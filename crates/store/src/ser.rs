//! Versioned little-endian binary serialization for sketches, embedding
//! matrices, and HNSW graphs, following the `TSFMCKP1` idiom of
//! `tsfm_nn::io`: an 8-byte magic per container, explicit lengths, bounds
//! checks on every count, and typed [`StoreError::Corrupt`] errors — never
//! panics — on corrupt input.
//!
//! Containers (each starts with its magic followed by a `u32` version):
//!
//! | magic      | contents                                            |
//! |------------|-----------------------------------------------------|
//! | `TSFMSEG1` | one [`TableRecord`]: sketch bundle + embeddings     |
//! | `TSFMEMB1` | a dense `rows × dim` `f32` embedding matrix (also a section of every segment: the per-column embeddings) |
//! | `TSFMHNS1` | an [`Hnsw`] graph (vectors + neighbour lists + RNG) |
//! | `TSFMSHD1` | one shard manifest: table metadata for a hash-prefix slice of the catalog |
//! | `TSFMARN1` | a flat sketch arena: fixed-width offset table + concatenated `TSFMSEG1` payloads, read positionally |
//!
//! The catalog manifest (`TSFMCAT1`) and index cache (`TSFMIDX1`) formats
//! live in [`crate::catalog`], the shard manifest and arena formats in
//! [`crate::shard`]; all are built from these primitives.
//!
//! ## Frame versions
//!
//! Version 2 (current) is a checksummed frame:
//!
//! ```text
//! magic(8) · version=2 (u32) · payload_len (u64) · crc32c (u32) · payload
//! ```
//!
//! The CRC32C (see [`crate::durable::crc32c`]) covers the payload, so any
//! single flipped bit — in the header via field validation, in the payload
//! via the checksum — surfaces as a typed [`StoreError::Corrupt`], never a
//! panic or silent misread. Version 1 frames (`magic · version=1 ·
//! streamed payload`, no length, no checksum) are still **read** for
//! migration: the first commit after opening a v1 store rewrites its
//! files as v2. Writers only emit v2.

use crate::error::{StoreError, StoreResult, FRAME};
use crate::record::TableRecord;
use std::io::{Read, Write};
use tsfm_search::{Hnsw, HnswConfig, HnswSnapshot, Metric};
use tsfm_sketch::{ColumnSketch, MinHash, NumericalSketch, TableSketch};
use tsfm_table::ColType;

pub const SEGMENT_MAGIC: &[u8; 8] = b"TSFMSEG1";
pub const EMBEDDING_MAGIC: &[u8; 8] = b"TSFMEMB1";
pub const HNSW_MAGIC: &[u8; 8] = b"TSFMHNS1";
pub const MANIFEST_MAGIC: &[u8; 8] = b"TSFMCAT1";
pub const INDEX_MAGIC: &[u8; 8] = b"TSFMIDX1";
pub const SHARD_MAGIC: &[u8; 8] = b"TSFMSHD1";
pub const ARENA_MAGIC: &[u8; 8] = b"TSFMARN1";

/// Current version written into every container (checksummed frames).
pub const FORMAT_VERSION: u32 = 2;
/// The pre-checksum streaming format, still readable for migration.
pub const LEGACY_VERSION: u32 = 1;

const MAX_STR: usize = 1 << 20;
const MAX_SIG: usize = 1 << 16;
const MAX_COLS: usize = 1 << 20;
const MAX_ELEMS: usize = 1 << 28;

/// Frame-level corruption, attributed to a concrete container format by
/// the caller via [`StoreError::into_format`].
pub(crate) fn bad(msg: impl Into<String>) -> StoreError {
    StoreError::corrupt(FRAME, msg)
}

// ---- primitives -----------------------------------------------------------

pub(crate) fn write_u8<W: Write>(w: &mut W, v: u8) -> StoreResult<()> {
    Ok(w.write_all(&[v])?)
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> StoreResult<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> StoreResult<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> StoreResult<()> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

pub(crate) fn write_str<W: Write>(w: &mut W, s: &str) -> StoreResult<()> {
    write_u32(w, s.len() as u32)?;
    Ok(w.write_all(s.as_bytes())?)
}

pub(crate) fn write_f32s<W: Write>(w: &mut W, vs: &[f32]) -> StoreResult<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_u8<R: Read>(r: &mut R) -> StoreResult<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> StoreResult<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> StoreResult<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> StoreResult<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

pub(crate) fn read_str<R: Read>(r: &mut R) -> StoreResult<String> {
    let len = read_u32(r)? as usize;
    if len > MAX_STR {
        return Err(bad(format!("unreasonable string length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("string not utf-8"))
}

pub(crate) fn read_f32s<R: Read>(r: &mut R) -> StoreResult<Vec<f32>> {
    let len = read_u64(r)? as usize;
    if len > MAX_ELEMS {
        return Err(bad(format!("unreasonable vector length {len}")));
    }
    let mut out = vec![0f32; len];
    let mut b = [0u8; 4];
    for v in &mut out {
        r.read_exact(&mut b)?;
        *v = f32::from_le_bytes(b);
    }
    Ok(out)
}

// ---- checksummed frames ---------------------------------------------------

/// A decoded frame header: either a v1 stream (the payload follows,
/// unframed — keep reading from the same reader) or a verified v2 payload.
pub(crate) enum Payload {
    Legacy,
    Framed(Vec<u8>),
}

/// Write a v2 frame: magic, version, payload length, CRC32C, payload.
pub(crate) fn write_frame<W: Write>(w: &mut W, magic: &[u8; 8], body: &[u8]) -> StoreResult<()> {
    w.write_all(magic)?;
    write_u32(w, FORMAT_VERSION)?;
    write_u64(w, body.len() as u64)?;
    write_u32(w, crate::durable::crc32c(body))?;
    Ok(w.write_all(body)?)
}

/// Read one frame of the given container type. For v2 the payload is
/// length-checked and CRC-verified before a byte of it is interpreted;
/// `Read::take` bounds the read so a garbled length can never
/// over-allocate. Errors are frame-level ([`bad`]) — the container reader
/// attributes them via [`StoreError::into_format`].
pub(crate) fn read_frame<R: Read>(r: &mut R, magic: &[u8; 8], what: &str) -> StoreResult<Payload> {
    let mut got = [0u8; 8];
    r.read_exact(&mut got)?;
    if &got != magic {
        return Err(bad(format!("not a {what} (bad magic)")));
    }
    match read_u32(r)? {
        LEGACY_VERSION => Ok(Payload::Legacy),
        FORMAT_VERSION => {
            let len = read_u64(r)?;
            let crc = read_u32(r)?;
            let mut body = Vec::new();
            r.take(len).read_to_end(&mut body)?;
            if body.len() as u64 != len {
                return Err(bad(format!(
                    "truncated {what}: frame claims {len} payload bytes, found {}",
                    body.len()
                )));
            }
            let actual = crate::durable::crc32c(&body);
            if actual != crc {
                return Err(bad(format!(
                    "{what} checksum mismatch: stored {crc:#010x}, computed {actual:#010x} \
                     over {len} bytes"
                )));
            }
            Ok(Payload::Framed(body))
        }
        v => Err(bad(format!("unsupported {what} version {v}"))),
    }
}

/// Consume only a frame's header (magic, version, and for v2 the length
/// and CRC words), leaving the reader at the first payload byte,
/// **without** verifying the checksum. For cheap peeks like the index
/// cache fingerprint in `stats` — anything that acts on the payload must
/// go through [`read_frame`].
pub(crate) fn read_frame_header<R: Read>(
    r: &mut R,
    magic: &[u8; 8],
    what: &str,
) -> StoreResult<u32> {
    let mut got = [0u8; 8];
    r.read_exact(&mut got)?;
    if &got != magic {
        return Err(bad(format!("not a {what} (bad magic)")));
    }
    let version = read_u32(r)?;
    match version {
        LEGACY_VERSION => {}
        FORMAT_VERSION => {
            read_u64(r)?;
            read_u32(r)?;
        }
        v => return Err(bad(format!("unsupported {what} version {v}"))),
    }
    Ok(version)
}

/// Parse a verified v2 payload from its in-memory slice, rejecting
/// trailing bytes (a v2 frame states its exact length, so leftovers mean
/// the payload and header disagree).
pub(crate) fn parse_framed<T>(
    body: &[u8],
    parse: impl FnOnce(&mut &[u8]) -> StoreResult<T>,
) -> StoreResult<T> {
    let mut s = body;
    let v = parse(&mut s)?;
    if !s.is_empty() {
        return Err(bad(format!("{} trailing bytes after payload", s.len())));
    }
    Ok(v)
}

// ---- sketches -------------------------------------------------------------

pub fn write_minhash<W: Write>(w: &mut W, mh: &MinHash) -> StoreResult<()> {
    write_u32(w, mh.k() as u32)?;
    for &s in &mh.sig {
        write_u64(w, s)?;
    }
    Ok(())
}

pub fn read_minhash<R: Read>(r: &mut R) -> StoreResult<MinHash> {
    let k = read_u32(r)? as usize;
    if k > MAX_SIG {
        return Err(bad(format!("unreasonable signature width {k}")));
    }
    let mut sig = Vec::with_capacity(k);
    for _ in 0..k {
        sig.push(read_u64(r)?);
    }
    Ok(MinHash { sig })
}

pub fn write_numeric<W: Write>(w: &mut W, s: &NumericalSketch) -> StoreResult<()> {
    write_f64(w, s.unique_frac)?;
    write_f64(w, s.nan_frac)?;
    write_f64(w, s.cell_width)?;
    for &p in &s.percentiles {
        write_f64(w, p)?;
    }
    write_f64(w, s.mean)?;
    write_f64(w, s.std)?;
    write_f64(w, s.min)?;
    write_f64(w, s.max)
}

pub fn read_numeric<R: Read>(r: &mut R) -> StoreResult<NumericalSketch> {
    let unique_frac = read_f64(r)?;
    let nan_frac = read_f64(r)?;
    let cell_width = read_f64(r)?;
    let mut percentiles = [0.0; 9];
    for p in &mut percentiles {
        *p = read_f64(r)?;
    }
    Ok(NumericalSketch {
        unique_frac,
        nan_frac,
        cell_width,
        percentiles,
        mean: read_f64(r)?,
        std: read_f64(r)?,
        min: read_f64(r)?,
        max: read_f64(r)?,
    })
}

/// `ColType` ↔ on-disk tag, reusing the paper's stable Fig.-1 codes.
fn coltype_tag(ty: ColType) -> u8 {
    ty.embedding_id() as u8
}

fn coltype_from_tag(tag: u8) -> StoreResult<ColType> {
    match tag {
        1 => Ok(ColType::Str),
        2 => Ok(ColType::Int),
        3 => Ok(ColType::Float),
        4 => Ok(ColType::Date),
        _ => Err(bad(format!("unknown column type tag {tag}"))),
    }
}

fn write_column_sketch<W: Write>(w: &mut W, c: &ColumnSketch) -> StoreResult<()> {
    write_str(w, &c.name)?;
    write_u8(w, coltype_tag(c.ty))?;
    write_minhash(w, &c.cell_minhash)?;
    match &c.word_minhash {
        Some(mh) => {
            write_u8(w, 1)?;
            write_minhash(w, mh)?;
        }
        None => write_u8(w, 0)?,
    }
    write_numeric(w, &c.numeric)
}

fn read_column_sketch<R: Read>(r: &mut R) -> StoreResult<ColumnSketch> {
    let name = read_str(r)?;
    let ty = coltype_from_tag(read_u8(r)?)?;
    let cell_minhash = read_minhash(r)?;
    let word_minhash = match read_u8(r)? {
        0 => None,
        1 => Some(read_minhash(r)?),
        t => return Err(bad(format!("bad word-minhash flag {t}"))),
    };
    Ok(ColumnSketch { name, ty, cell_minhash, word_minhash, numeric: read_numeric(r)? })
}

pub fn write_table_sketch<W: Write>(w: &mut W, s: &TableSketch) -> StoreResult<()> {
    write_str(w, &s.table_id)?;
    write_str(w, &s.table_name)?;
    write_str(w, &s.description)?;
    write_u64(w, s.num_rows as u64)?;
    write_minhash(w, &s.content_snapshot)?;
    write_u32(w, s.columns.len() as u32)?;
    for c in &s.columns {
        write_column_sketch(w, c)?;
    }
    Ok(())
}

pub fn read_table_sketch<R: Read>(r: &mut R) -> StoreResult<TableSketch> {
    let table_id = read_str(r)?;
    let table_name = read_str(r)?;
    let description = read_str(r)?;
    let num_rows = read_u64(r)? as usize;
    let content_snapshot = read_minhash(r)?;
    let ncols = read_u32(r)? as usize;
    if ncols > MAX_COLS {
        return Err(bad(format!("unreasonable column count {ncols}")));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(read_column_sketch(r)?);
    }
    Ok(TableSketch { table_id, table_name, description, content_snapshot, columns, num_rows })
}

// ---- embedding matrices ---------------------------------------------------

/// Write a dense `rows.len() × dim` matrix as a v2 frame. Every row must
/// have `dim` elements.
pub fn write_embedding_matrix<W: Write>(w: &mut W, rows: &[Vec<f32>], dim: usize) -> StoreResult<()> {
    let mut body = Vec::new();
    write_u32(&mut body, rows.len() as u32)?;
    write_u32(&mut body, dim as u32)?;
    for row in rows {
        if row.len() != dim {
            return Err(bad(format!("embedding row of {} elements, expected {dim}", row.len())));
        }
        for &v in row {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }
    write_frame(w, EMBEDDING_MAGIC, &body)
}

pub fn read_embedding_matrix<R: Read>(r: &mut R) -> StoreResult<Vec<Vec<f32>>> {
    let res = match read_frame(r, EMBEDDING_MAGIC, "TSFM embedding matrix") {
        Ok(Payload::Legacy) => read_embedding_matrix_body(r),
        Ok(Payload::Framed(body)) => parse_framed(&body, |s| read_embedding_matrix_body(s)),
        Err(e) => Err(e),
    };
    res.map_err(|e| e.into_format("TSFMEMB1"))
}

fn read_embedding_matrix_body<R: Read>(r: &mut R) -> StoreResult<Vec<Vec<f32>>> {
    let nrows = read_u32(r)? as usize;
    let dim = read_u32(r)? as usize;
    if nrows.saturating_mul(dim) > MAX_ELEMS {
        return Err(bad(format!("unreasonable embedding matrix {nrows}×{dim}")));
    }
    let mut rows = Vec::with_capacity(nrows);
    let mut b = [0u8; 4];
    for _ in 0..nrows {
        let mut row = vec![0f32; dim];
        for v in &mut row {
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        rows.push(row);
    }
    Ok(rows)
}

// ---- table records (segment payload) -------------------------------------

pub fn write_record<W: Write>(w: &mut W, rec: &TableRecord) -> StoreResult<()> {
    let mut body = Vec::new();
    write_u64(&mut body, rec.content_hash)?;
    write_table_sketch(&mut body, &rec.sketch)?;
    match &rec.table_embedding {
        Some(e) => {
            write_u8(&mut body, 1)?;
            write_f32s(&mut body, e)?;
        }
        None => write_u8(&mut body, 0)?,
    }
    // Column embeddings: an embedded TSFMEMB1 frame (0 rows = none) — its
    // own CRC is redundant under the segment's but keeps the matrix
    // readable as a standalone container.
    let dim = rec.column_embeddings.first().map_or(0, Vec::len);
    write_embedding_matrix(&mut body, &rec.column_embeddings, dim)?;
    write_frame(w, SEGMENT_MAGIC, &body)
}

pub fn read_record<R: Read>(r: &mut R) -> StoreResult<TableRecord> {
    let res = match read_frame(r, SEGMENT_MAGIC, "TSFM segment") {
        Ok(Payload::Legacy) => read_record_body(r),
        Ok(Payload::Framed(body)) => parse_framed(&body, |s| read_record_body(s)),
        Err(e) => Err(e),
    };
    res.map_err(|e| e.into_format("TSFMSEG1"))
}

fn read_record_body<R: Read>(r: &mut R) -> StoreResult<TableRecord> {
    let content_hash = read_u64(r)?;
    let sketch = read_table_sketch(r)?;
    let table_embedding = match read_u8(r)? {
        0 => None,
        1 => Some(read_f32s(r)?),
        t => return Err(bad(format!("bad table-embedding flag {t}"))),
    };
    let column_embeddings = read_embedding_matrix(r)?;
    if !column_embeddings.is_empty() && column_embeddings.len() != sketch.columns.len() {
        return Err(bad(format!(
            "{} column embeddings for {} columns",
            column_embeddings.len(),
            sketch.columns.len()
        )));
    }
    Ok(TableRecord { sketch, content_hash, table_embedding, column_embeddings })
}

// ---- HNSW graphs ----------------------------------------------------------

pub fn write_hnsw<W: Write>(w: &mut W, index: &Hnsw) -> StoreResult<()> {
    let s = index.snapshot();
    let mut body = Vec::new();
    write_u32(&mut body, s.dim as u32)?;
    write_u8(&mut body, s.metric.tag())?;
    write_u32(&mut body, s.cfg.m as u32)?;
    write_u32(&mut body, s.cfg.ef_construction as u32)?;
    write_u32(&mut body, s.cfg.ef_search as u32)?;
    write_u64(&mut body, s.cfg.seed)?;
    write_u64(&mut body, s.rng_state)?;
    write_u64(&mut body, s.max_level as u64)?;
    match s.entry {
        Some(e) => {
            write_u8(&mut body, 1)?;
            write_u64(&mut body, e as u64)?;
        }
        None => write_u8(&mut body, 0)?,
    }
    write_f32s(&mut body, &s.data)?;
    write_u32(&mut body, s.neighbors.len() as u32)?;
    for layers in &s.neighbors {
        write_u32(&mut body, layers.len() as u32)?;
        for layer in layers {
            write_u32(&mut body, layer.len() as u32)?;
            for &n in layer {
                write_u64(&mut body, n as u64)?;
            }
        }
    }
    write_frame(w, HNSW_MAGIC, &body)
}

pub fn read_hnsw<R: Read>(r: &mut R) -> StoreResult<Hnsw> {
    let res = match read_frame(r, HNSW_MAGIC, "TSFM HNSW graph") {
        Ok(Payload::Legacy) => read_hnsw_body(r),
        Ok(Payload::Framed(body)) => parse_framed(&body, |s| read_hnsw_body(s)),
        Err(e) => Err(e),
    };
    res.map_err(|e| e.into_format("TSFMHNS1"))
}

fn read_hnsw_body<R: Read>(r: &mut R) -> StoreResult<Hnsw> {
    let dim = read_u32(r)? as usize;
    let metric = Metric::from_tag(read_u8(r)?)
        .ok_or_else(|| bad("unknown distance metric tag"))?;
    let cfg = HnswConfig {
        m: read_u32(r)? as usize,
        ef_construction: read_u32(r)? as usize,
        ef_search: read_u32(r)? as usize,
        seed: read_u64(r)?,
    };
    let rng_state = read_u64(r)?;
    let max_level = read_u64(r)? as usize;
    let entry = match read_u8(r)? {
        0 => None,
        1 => Some(read_u64(r)? as usize),
        t => return Err(bad(format!("bad entry flag {t}"))),
    };
    let data = read_f32s(r)?;
    let n = read_u32(r)? as usize;
    // `data` holds real file content, so bounding counts by it keeps a
    // garbled header from over-allocating before validation catches it.
    if dim == 0 || n != data.len() / dim {
        return Err(bad(format!("node count {n} does not match vector buffer")));
    }
    let mut neighbors = Vec::with_capacity(n);
    for _ in 0..n {
        let nlayers = read_u32(r)? as usize;
        if nlayers > 64 {
            return Err(bad(format!("unreasonable layer count {nlayers}")));
        }
        let mut layers = Vec::with_capacity(nlayers);
        for _ in 0..nlayers {
            let len = read_u32(r)? as usize;
            if len > n {
                return Err(bad(format!("unreasonable neighbour count {len}")));
            }
            let mut layer = Vec::with_capacity(len);
            for _ in 0..len {
                layer.push(read_u64(r)? as usize);
            }
            layers.push(layer);
        }
        neighbors.push(layers);
    }
    let snapshot =
        HnswSnapshot { cfg, dim, metric, data, neighbors, entry, max_level, rng_state };
    Hnsw::from_snapshot(snapshot).map_err(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_sketch::{MinHasher, SketchConfig};
    use tsfm_table::{Column, Table, Value};

    fn sample_sketch() -> TableSketch {
        let mut t = Table::new("t1", "cities").with_description("city stats");
        t.push_column(Column::new(
            "city",
            vec![Value::Str("Vienna".into()), Value::Str("Graz".into())],
        ));
        t.push_column(Column::new("pop", vec![Value::Int(1900000), Value::Int(290000)]));
        TableSketch::build(&t, &SketchConfig::default())
    }

    #[test]
    fn minhash_roundtrip() {
        let mh = MinHasher::new(32, 7).signature(["a", "b", "c"]);
        let mut buf = Vec::new();
        write_minhash(&mut buf, &mh).unwrap();
        assert_eq!(read_minhash(&mut buf.as_slice()).unwrap(), mh);
    }

    #[test]
    fn record_roundtrip_with_embeddings() {
        let rec = TableRecord {
            sketch: sample_sketch(),
            content_hash: 0xdead_beef,
            table_embedding: Some(vec![1.0, -2.5, 3.25]),
            column_embeddings: vec![vec![0.5; 4], vec![-0.5; 4]],
        };
        let mut buf = Vec::new();
        write_record(&mut buf, &rec).unwrap();
        let back = read_record(&mut buf.as_slice()).unwrap();
        assert_eq!(back.content_hash, rec.content_hash);
        assert_eq!(back.table_embedding, rec.table_embedding);
        assert_eq!(back.column_embeddings, rec.column_embeddings);
        assert_eq!(back.sketch.table_id, "t1");
        assert_eq!(back.sketch.columns.len(), 2);
        assert_eq!(back.sketch.content_snapshot, rec.sketch.content_snapshot);
        for (a, b) in back.sketch.columns.iter().zip(&rec.sketch.columns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ty, b.ty);
            assert_eq!(a.cell_minhash, b.cell_minhash);
            assert_eq!(a.word_minhash, b.word_minhash);
            assert_eq!(a.numeric, b.numeric);
        }
    }

    #[test]
    fn record_without_embeddings() {
        let rec = TableRecord::from_sketch(sample_sketch(), 42);
        let mut buf = Vec::new();
        write_record(&mut buf, &rec).unwrap();
        let back = read_record(&mut buf.as_slice()).unwrap();
        assert_eq!(back.table_embedding, None);
        assert!(back.column_embeddings.is_empty());
    }

    #[test]
    fn corrupt_records_error_never_panic() {
        let rec = TableRecord::from_sketch(sample_sketch(), 1);
        let mut buf = Vec::new();
        write_record(&mut buf, &rec).unwrap();
        // Bad magic.
        let mut junk = buf.clone();
        junk[0] ^= 0xff;
        assert!(read_record(&mut junk.as_slice()).is_err());
        // Bad version.
        let mut junk = buf.clone();
        junk[8] = 0xff;
        assert!(read_record(&mut junk.as_slice()).is_err());
        // Every strict prefix must error (EOF mid-field), never panic.
        for cut in 0..buf.len() {
            assert!(read_record(&mut buf[..cut].to_vec().as_slice()).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_record_is_detected() {
        // The v2 frame guarantee: header flips die in field validation
        // (version 2 cannot single-bit-flip to 1, so the legacy path can
        // never be triggered by accident), payload flips die on the CRC.
        let rec = TableRecord {
            sketch: sample_sketch(),
            content_hash: 77,
            table_embedding: Some(vec![0.25, -1.5]),
            column_embeddings: vec![vec![1.0; 3], vec![2.0; 3]],
        };
        let mut buf = Vec::new();
        write_record(&mut buf, &rec).unwrap();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert!(read_record(&mut buf.as_slice()).is_err(), "flip {byte}:{bit} accepted");
                buf[byte] ^= 1 << bit;
            }
        }
        assert!(read_record(&mut buf.as_slice()).is_ok(), "restored buffer must read");
    }

    #[test]
    fn legacy_v1_record_still_reads() {
        // A v1 frame is magic + version + the streamed payload, no length
        // or checksum. Readers must keep accepting it so pre-checksum
        // stores open for migration.
        let rec = TableRecord::from_sketch(sample_sketch(), 321);
        let mut buf = Vec::new();
        buf.extend_from_slice(SEGMENT_MAGIC);
        write_u32(&mut buf, LEGACY_VERSION).unwrap();
        write_u64(&mut buf, rec.content_hash).unwrap();
        write_table_sketch(&mut buf, &rec.sketch).unwrap();
        write_u8(&mut buf, 0).unwrap();
        write_embedding_matrix(&mut buf, &[], 0).unwrap();
        let back = read_record(&mut buf.as_slice()).unwrap();
        assert_eq!(back.content_hash, 321);
        assert_eq!(back.sketch.table_id, rec.sketch.table_id);
        assert_eq!(back.sketch.content_snapshot, rec.sketch.content_snapshot);
    }

    #[test]
    fn framed_payload_rejects_trailing_bytes() {
        let rec = TableRecord::from_sketch(sample_sketch(), 5);
        let mut body = Vec::new();
        write_u64(&mut body, rec.content_hash).unwrap();
        write_table_sketch(&mut body, &rec.sketch).unwrap();
        write_u8(&mut body, 0).unwrap();
        write_embedding_matrix(&mut body, &[], 0).unwrap();
        body.extend_from_slice(b"junk");
        let mut buf = Vec::new();
        write_frame(&mut buf, SEGMENT_MAGIC, &body).unwrap();
        let err = read_record(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn embedding_matrix_roundtrip_and_shape_check() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mut buf = Vec::new();
        write_embedding_matrix(&mut buf, &rows, 2).unwrap();
        assert_eq!(read_embedding_matrix(&mut buf.as_slice()).unwrap(), rows);
        // Ragged rows rejected at write time.
        let ragged = vec![vec![1.0f32], vec![2.0, 3.0]];
        assert!(write_embedding_matrix(&mut Vec::new(), &ragged, 1).is_err());
    }

    #[test]
    fn hnsw_roundtrip_preserves_search() {
        use tsfm_search::Metric;
        let mut h = Hnsw::new(4, Metric::Cosine, HnswConfig::default());
        for i in 0..50u32 {
            let v: Vec<f32> = (0..4).map(|j| ((i * 7 + j) % 13) as f32 - 6.0).collect();
            h.add(&v);
        }
        let mut buf = Vec::new();
        write_hnsw(&mut buf, &h).unwrap();
        let back = read_hnsw(&mut buf.as_slice()).unwrap();
        assert_eq!(h.snapshot(), back.snapshot());
        assert_eq!(h.search(&[1.0, 2.0, 3.0, 4.0], 5), back.search(&[1.0, 2.0, 3.0, 4.0], 5));
        // Truncations error out.
        for cut in [0, 7, 12, 20, buf.len() - 1] {
            assert!(read_hnsw(&mut buf[..cut].to_vec().as_slice()).is_err(), "cut {cut}");
        }
    }
}
