//! The production serve frontend: a bounded-concurrency JSONL-over-TCP
//! discovery server.
//!
//! The original `tsfm serve` loop spawned one unbounded thread per
//! connection and trusted clients completely: a newline-free stream could
//! buffer without bound, an idle peer parked a worker forever, and enough
//! connections exhausted threads and file descriptors. This module is the
//! hardened replacement — hand-rolled on `std` only (crates.io is
//! unreachable), in the same spirit as the hand-rolled JSON in
//! [`crate::wire`]:
//!
//! * **Bounded worker pool.** At most [`ServeConfig::max_connections`]
//!   worker threads exist; workers are pooled and reused across
//!   connections (spawned lazily, trimmed after
//!   [`ServeConfig::worker_linger`] idle). Accepted connections beyond
//!   the pool wait in a queue of at most
//!   [`ServeConfig::pending_capacity`]; past that the acceptor *sheds*:
//!   it answers with a one-line [`crate::wire::unavailable_json`] reply
//!   and closes, so overload degrades into fast, explicit refusals
//!   instead of unbounded resource growth.
//! * **Timeouts everywhere.** A connection idle between requests longer
//!   than `idle_timeout` is closed; a request line that does not complete
//!   within `read_timeout` of its first byte is closed (slowloris
//!   defence — the deadline is absolute, so trickling bytes does not
//!   reset it); a peer that stops draining replies hits `write_timeout`
//!   and is closed (per-connection write backpressure).
//! * **Request-line cap.** Lines longer than `max_line_bytes` are
//!   answered with a typed `invalid_request` error and the connection is
//!   closed — a newline-free stream can no longer exhaust memory.
//! * **Pipelining.** Clients may send many requests without waiting;
//!   replies come back in order, one line each.
//! * **Hot reload.** The [`Searcher`] snapshot lives behind an
//!   [`RwLock`]; [`ServerHandle::swap_searcher`] installs a new snapshot
//!   without dropping in-flight queries (each request clones the `Arc`s
//!   it needs up front).
//! * **Graceful shutdown.** [`ServerHandle::shutdown`] stops the
//!   acceptor, lets every in-flight request finish, then closes
//!   connections and joins the workers.
//! * **Ops surface.** The `{"op":"stats"}` wire verb reports the
//!   [`crate::metrics::ServeMetrics`] counters and latency percentiles;
//!   `{"op":"metrics"}` renders the same counters (plus the process-wide
//!   [`tsfm_obs::metrics::global`] registry) as Prometheus text;
//!   `{"op":"slowlog"}` reports the slowest requests seen, each with the
//!   per-stage breakdown the engine's profiler produced. The serve loop
//!   profiles every query (a handful of clock reads against a hundreds-
//!   of-microseconds query) so the slowlog always has stage attribution,
//!   and strips the breakdown from replies unless the client asked for
//!   `"profile":true`.

mod pool;

use crate::error::{StoreError, StoreResult};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::request::DiscoveryResponse;
use crate::searcher::Searcher;
use crate::wire::{self, ServeCommand, ServeRequest};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use tsfm_obs::slowlog::{unix_ms_now, SlowEntry, Slowlog};
use tsfm_table::csv;

/// How often blocked reads wake up to re-check deadlines and the
/// shutdown flag. Short enough that shutdown and deadline enforcement
/// feel immediate; long enough to cost nothing.
const POLL_SLICE: Duration = Duration::from_millis(100);

/// How many of the slowest requests the `slowlog` verb retains.
const SLOWLOG_CAPACITY: usize = 32;

/// Tuning knobs for [`Server`]. The defaults suit an interactive
/// discovery service; every limit exists to bound a resource a hostile
/// or broken client could otherwise grow without limit.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently served connections == maximum worker threads.
    pub max_connections: usize,
    /// Accepted connections allowed to wait for a free worker before the
    /// acceptor starts shedding.
    pub pending_capacity: usize,
    /// Close a connection idle (no request in progress) this long.
    pub idle_timeout: Duration,
    /// A request line must complete within this of its first byte.
    pub read_timeout: Duration,
    /// Give up on a peer that does not drain a reply within this.
    pub write_timeout: Duration,
    /// Hard cap on one request line (bytes, newline excluded).
    pub max_line_bytes: usize,
    /// Idle pooled workers exit after this long without work.
    pub worker_linger: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            pending_capacity: 256,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 4 << 20,
            worker_linger: Duration::from_secs(10),
        }
    }
}

/// Shared state between the acceptor, the workers, and every handle.
struct Shared {
    cfg: ServeConfig,
    searcher: RwLock<Searcher>,
    metrics: ServeMetrics,
    started: Instant,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Accepted connections waiting for a worker.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Live worker threads (busy or idle).
    workers: AtomicUsize,
    /// Workers currently parked on the queue.
    idle_workers: AtomicUsize,
    /// Times a new snapshot was swapped in (the serve-side epoch).
    reloads: AtomicU64,
    /// The slowest requests seen, with per-stage breakdowns.
    slowlog: Slowlog,
    /// Test-only injection point: when set, the next connection handler
    /// panics on entry so tests can exercise the pool's panic
    /// containment without a reachable panic in production code.
    #[cfg(test)]
    panic_next_connection: AtomicBool,
}

/// A bounded-concurrency JSONL-over-TCP discovery server. Construct with
/// [`Server::bind`], then call [`Server::run`] (blocking) on a dedicated
/// thread; control it from anywhere through a [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cheap clonable control handle: shutdown, snapshot hot-swap, and
/// metrics access.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` and prepare to serve `searcher`. Port 0 binds an
    /// ephemeral port — read it back via [`Server::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        searcher: Searcher,
        cfg: ServeConfig,
    ) -> StoreResult<Server> {
        if cfg.max_connections == 0 {
            return Err(StoreError::invalid("max_connections must be >= 1"));
        }
        if cfg.max_line_bytes == 0 {
            return Err(StoreError::invalid("max_line_bytes must be >= 1"));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            searcher: RwLock::new(searcher),
            metrics: ServeMetrics::new(),
            started: Instant::now(),
            addr,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            workers: AtomicUsize::new(0),
            idle_workers: AtomicUsize::new(0),
            reloads: AtomicU64::new(0),
            slowlog: Slowlog::new(SLOWLOG_CAPACITY),
            #[cfg(test)]
            panic_next_connection: AtomicBool::new(false),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: self.shared.clone() }
    }

    /// Accept and dispatch until [`ServerHandle::shutdown`] is called.
    /// Consumes the server; returns once every worker has drained its
    /// in-flight request and exited.
    pub fn run(self) -> StoreResult<()> {
        let shared = &self.shared;
        let mut joins = Vec::new();
        for stream in self.listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break; // the shutdown wake-up connection, or a late accept
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => continue, // transient accept failure (EMFILE etc.)
            };
            shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            pool::dispatch(shared, stream, &mut joins);
        }

        // Graceful drain: close queued-but-unserved connections, wake
        // every parked worker so it can observe the flag and exit, then
        // wait for in-flight requests to complete.
        shared.shutdown.store(true, Ordering::Release);
        tsfm_obs::sync::lock_unpoisoned(&shared.queue).clear();
        shared.queue_cv.notify_all();
        for j in joins {
            let _ = j.join();
        }
        Ok(())
    }
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Ask the server to stop. The acceptor wakes immediately; workers
    /// finish the request they are serving, close their connections, and
    /// exit. [`Server::run`] returns once they have.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        // Blocking `accept` only returns on a connection: poke it.
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
    }

    /// Install a new snapshot (catalog hot-reload). In-flight queries
    /// keep the snapshot they started with; the next request on every
    /// connection sees the new one. Returns the reload generation (1 for
    /// the first swap).
    pub fn swap_searcher(&self, searcher: Searcher) -> u64 {
        *tsfm_obs::sync::write_unpoisoned(&self.shared.searcher) = searcher;
        self.shared.reloads.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The snapshot currently serving queries.
    pub fn searcher(&self) -> Searcher {
        tsfm_obs::sync::read_unpoisoned(&self.shared.searcher).clone()
    }

    /// Point-in-time ops counters (what the `stats` verb reports).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Live worker threads (for tests asserting the pool stays bounded).
    pub fn worker_count(&self) -> usize {
        self.shared.workers.load(Ordering::Relaxed)
    }

    /// The slowest requests seen so far (what the `slowlog` verb reports),
    /// slowest first.
    pub fn slowlog(&self) -> Vec<SlowEntry> {
        self.shared.slowlog.snapshot()
    }

    /// The Prometheus text the `metrics` verb reports.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.shared)
    }
}

/// Discard whatever the peer already sent, bounded in bytes and time, so
/// closing the socket sends FIN instead of RST — an RST can destroy a
/// just-written error reply before the client reads it. The bounds keep
/// this from becoming its own resource sink: a peer still streaming past
/// them simply gets the reset.
fn drain_before_close(reader: &mut BufReader<TcpStream>) {
    const DRAIN_BYTE_BUDGET: usize = 1 << 20;
    const DRAIN_TIME_BUDGET: Duration = Duration::from_secs(1);
    let t0 = Instant::now();
    let mut drained = 0usize;
    while drained < DRAIN_BYTE_BUDGET && t0.elapsed() < DRAIN_TIME_BUDGET {
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF: peer is done
            Ok(chunk) => {
                let n = chunk.len();
                drained += n;
                reader.consume(n);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Quiet for a full poll slice: the pipe is empty enough.
                return;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Why `read_request_line` stopped.
enum LineOutcome {
    /// A complete line (newline stripped) is in the buffer.
    Line,
    /// Peer closed its write half (or mid-line EOF).
    Eof,
    /// The line exceeded the cap before a newline arrived.
    Overflow,
    /// No request in progress and the idle deadline passed.
    IdleTimeout,
    /// A partial line stalled past the read deadline (slowloris).
    SlowRead,
    /// Server shutting down between requests.
    Shutdown,
    /// Hard I/O error.
    Failed,
}

/// Read one `\n`-terminated request line into `line`, enforcing the line
/// cap, the idle deadline, and the absolute per-line read deadline. The
/// socket carries a short poll timeout ([`POLL_SLICE`]) so deadline and
/// shutdown checks run even while the peer is silent.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    shared: &Shared,
) -> LineOutcome {
    line.clear();
    let idle_deadline = Instant::now() + shared.cfg.idle_timeout;
    let mut line_deadline: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::Acquire) && line.is_empty() {
            return LineOutcome::Shutdown;
        }
        // The line deadline is absolute: check it even while bytes are
        // arriving, or a client trickling one byte per poll slice would
        // hold a worker forever (the classic slowloris).
        if let Some(d) = line_deadline {
            if Instant::now() >= d {
                return LineOutcome::SlowRead;
            }
        }
        let chunk = match reader.fill_buf() {
            Ok([]) => return LineOutcome::Eof,
            Ok(chunk) => chunk,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let now = Instant::now();
                if let Some(d) = line_deadline {
                    if now >= d {
                        return LineOutcome::SlowRead;
                    }
                } else if now >= idle_deadline {
                    return LineOutcome::IdleTimeout;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return LineOutcome::Failed,
        };
        // First byte of a request starts the absolute line deadline.
        if line_deadline.is_none() {
            line_deadline = Some(Instant::now() + shared.cfg.read_timeout);
        }
        if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            if line.len() + nl > shared.cfg.max_line_bytes {
                return LineOutcome::Overflow;
            }
            line.extend_from_slice(&chunk[..nl]);
            reader.consume(nl + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return LineOutcome::Line;
        }
        let take = chunk.len();
        if line.len() + take > shared.cfg.max_line_bytes {
            // Consume what we peeked so the buffer does not replay it;
            // the connection is closing anyway.
            reader.consume(take);
            return LineOutcome::Overflow;
        }
        line.extend_from_slice(chunk);
        reader.consume(take);
    }
}

/// Serve one connection to completion: read JSONL requests, answer each
/// with one JSON line, enforce every limit. Request-level failures are
/// answered through the typed error serializer and never kill the server.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    #[cfg(test)]
    if shared.panic_next_connection.swap(false, Ordering::Relaxed) {
        panic!("injected: connection handler panic (test hook)");
    }
    let _ = stream.set_nodelay(true);
    // Short poll timeout — the loop, not the kernel, owns the deadlines.
    if stream.set_read_timeout(Some(POLL_SLICE)).is_err()
        || stream.set_write_timeout(Some(shared.cfg.write_timeout)).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = std::io::BufWriter::new(stream);
    let mut line = Vec::new();

    loop {
        match read_request_line(&mut reader, &mut line, shared) {
            LineOutcome::Line => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue; // blank keep-alive line
                }
                let reply = match std::str::from_utf8(&line) {
                    Ok(text) => handle_line(shared, text),
                    Err(_) => {
                        count_error(shared, true);
                        wire::error_json(&StoreError::invalid("request line is not valid UTF-8"))
                    }
                };
                if writer
                    .write_all(reply.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // Peer gone or not draining: write backpressure bound.
                    shared.metrics.closed_slow_write.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            LineOutcome::Overflow => {
                shared.metrics.overlong_lines.fetch_add(1, Ordering::Relaxed);
                count_error(shared, true);
                let e = StoreError::invalid(format!(
                    "request line exceeds {} bytes",
                    shared.cfg.max_line_bytes
                ));
                let sent = writer
                    .write_all(wire::error_json(&e).as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_ok();
                if sent {
                    drain_before_close(&mut reader);
                }
                return; // cannot resync mid-line: close
            }
            LineOutcome::IdleTimeout => {
                shared.metrics.closed_idle.fetch_add(1, Ordering::Relaxed);
                return;
            }
            LineOutcome::SlowRead => {
                shared.metrics.closed_slow_read.fetch_add(1, Ordering::Relaxed);
                let e = StoreError::invalid(format!(
                    "request line not completed within {:?}",
                    shared.cfg.read_timeout
                ));
                let sent = writer
                    .write_all(wire::error_json(&e).as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_ok();
                if sent {
                    drain_before_close(&mut reader);
                }
                return;
            }
            LineOutcome::Eof | LineOutcome::Shutdown | LineOutcome::Failed => return,
        }
    }
}

fn count_error(shared: &Shared, client: bool) {
    shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    if client {
        shared.metrics.requests_client_error.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.requests_server_error.fetch_add(1, Ordering::Relaxed);
    }
}

/// Parse and execute one request line, returning the reply line (no
/// trailing newline). Never panics, never returns an un-serialized error.
fn handle_line(shared: &Shared, line: &str) -> String {
    match ServeCommand::parse_line(line) {
        Ok(ServeCommand::Stats) => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            stats_json(shared)
        }
        Ok(ServeCommand::Metrics) => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            format!("{{\"metrics\":\"{}\"}}", wire::escape_json(&prometheus_text(shared)))
        }
        Ok(ServeCommand::Slowlog) => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            slowlog_json(shared)
        }
        Ok(ServeCommand::Query(mut req)) => {
            // Clone the snapshot up front: a concurrent hot-swap must not
            // affect a query already started.
            let searcher = tsfm_obs::sync::read_unpoisoned(&shared.searcher).clone();
            // Profile every query regardless of what the client asked:
            // the cost is a handful of clock reads, and it means the
            // slowlog always carries a stage breakdown. The reply only
            // keeps the breakdown when the client opted in.
            let client_wants_profile = req.request.profile();
            req.request = req.request.clone().with_profile(true);
            let t0 = Instant::now();
            match execute(&searcher, &req) {
                Ok(mut resp) => {
                    let total_us = t0.elapsed().as_micros() as u64;
                    shared.metrics.latency.record(total_us);
                    shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                    shared.slowlog.record(SlowEntry {
                        label: resp.query_id.clone(),
                        detail: resp.mode.name().to_string(),
                        total_us,
                        unix_ms: unix_ms_now(),
                        stages: resp.profile.clone().unwrap_or_default(),
                    });
                    if !client_wants_profile {
                        resp.profile = None;
                    }
                    wire::response_json(&resp)
                }
                Err(e) => {
                    count_error(shared, e.is_client_error());
                    wire::error_json(&e)
                }
            }
        }
        Err(e) => {
            count_error(shared, e.is_client_error());
            wire::error_json(&e)
        }
    }
}

/// Run one parsed discovery request against a snapshot. This is the
/// single execution path shared by the server and any embedding caller;
/// the `(None, None)` arm is a typed error, not a panic — `parse_line`
/// rejects it today, but a connection worker must never carry a panic
/// surface for a state a future refactor could reintroduce.
pub fn execute(searcher: &Searcher, req: &ServeRequest) -> StoreResult<DiscoveryResponse> {
    match (&req.csv, &req.id) {
        (Some(text), _) => {
            let table = csv::table_from_csv(&req.query_id, &req.query_id, text);
            searcher.search_table(&table, &req.request)
        }
        (None, Some(id)) => searcher.search_id(id, &req.request),
        (None, None) => Err(StoreError::invalid(
            "request needs a query table: inline \"csv\" or a stored \"id\"",
        )),
    }
}

/// The `{"op":"stats"}` reply: ops counters, corpus counters, and latency
/// percentiles, as one JSON line.
fn stats_json(shared: &Shared) -> String {
    let m = shared.metrics.snapshot();
    let (tables, epoch) = {
        let s = tsfm_obs::sync::read_unpoisoned(&shared.searcher);
        (s.len(), s.epoch())
    };
    format!(
        "{{\"stats\":{{\"uptime_ms\":{},\"tables\":{tables},\"epoch\":{epoch},\
         \"reloads\":{},\
         \"connections\":{{\"active\":{},\"accepted\":{},\"shed\":{},\
         \"closed_idle\":{},\"closed_slow_read\":{},\"closed_slow_write\":{},\
         \"overlong_lines\":{}}},\
         \"requests\":{{\"total\":{},\"ok\":{},\"client_error\":{},\"server_error\":{}}},\
         \"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}}}}}",
        shared.started.elapsed().as_millis(),
        shared.reloads.load(Ordering::Relaxed),
        m.active,
        m.accepted,
        m.shed,
        m.closed_idle,
        m.closed_slow_read,
        m.closed_slow_write,
        m.overlong_lines,
        m.requests_total,
        m.requests_ok,
        m.requests_client_error,
        m.requests_server_error,
        m.latency_count,
        m.latency_mean_us,
        m.latency_p50_us,
        m.latency_p95_us,
        m.latency_p99_us,
        m.latency_max_us,
    )
}

/// The `{"op":"metrics"}` payload: this server's `tsfm_serve_*` families
/// plus the process-wide registry (sketch/search/catalog instruments).
fn prometheus_text(shared: &Shared) -> String {
    let tables = tsfm_obs::sync::read_unpoisoned(&shared.searcher).len();
    let mut text = shared.metrics.prometheus_text(
        tables,
        shared.started.elapsed().as_millis() as u64,
        shared.reloads.load(Ordering::Relaxed),
    );
    text.push_str(&tsfm_obs::metrics::global().prometheus_text());
    text
}

/// The `{"op":"slowlog"}` reply: slowest requests first, each with its
/// stage breakdown in execution order.
fn slowlog_json(shared: &Shared) -> String {
    let entries = shared.slowlog.snapshot();
    let items: Vec<String> = entries
        .iter()
        .map(|e| {
            let stages: Vec<String> = e
                .stages
                .iter()
                .map(|(stage, us)| format!("[\"{}\",{us}]", wire::escape_json(stage)))
                .collect();
            format!(
                "{{\"query\":\"{}\",\"mode\":\"{}\",\"micros\":{},\"unix_ms\":{},\"stages\":[{}]}}",
                wire::escape_json(&e.label),
                wire::escape_json(&e.detail),
                e.total_us,
                e.unix_ms,
                stages.join(",")
            )
        })
        .collect();
    format!("{{\"slowlog\":[{}]}}", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::wire::Json;
    use std::io::Read;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsfm_serve_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A catalog with `n` tiny tables (`t0..tn`), its searcher, and dir.
    fn searcher_with(tag: &str, n: usize) -> (Searcher, PathBuf) {
        let dir = tmp_dir(tag);
        let mut cat = Catalog::open(&dir).unwrap();
        for i in 0..n {
            let t = csv::table_from_csv(
                &format!("t{i}"),
                &format!("t{i}"),
                &format!("city,pop\nVienna{i},{}\nGraz{i},{}\n", 100 + i, 200 + i),
            );
            cat.add_table(&t, i as u64 + 1).unwrap();
        }
        let s = cat.searcher().unwrap();
        cat.commit().unwrap();
        (s, dir)
    }

    /// Start a server on an ephemeral port with `cfg`; returns its handle
    /// and the join handle of the run thread.
    fn start(
        tag: &str,
        n: usize,
        cfg: ServeConfig,
    ) -> (ServerHandle, std::thread::JoinHandle<StoreResult<()>>, SocketAddr) {
        let (searcher, _dir) = searcher_with(tag, n);
        let server = Server::bind("127.0.0.1:0", searcher, cfg).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        // Return the run result instead of unwrapping inside the thread:
        // a panic or error in the acceptor must fail the test at join
        // time, not vanish into a dead thread.
        let join = std::thread::spawn(move || server.run());
        (handle, join, addr)
    }

    /// Shut the server down and propagate any run-thread panic or error.
    fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<StoreResult<()>>) {
        handle.shutdown();
        join.join().expect("serve run thread panicked").expect("serve run returned an error");
    }

    fn roundtrip(stream: &mut (impl Write + Unpin), reader: &mut impl BufRead, req: &str) -> Json {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        wire::parse_json(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn serves_queries_and_stats_over_one_connection() {
        let (handle, join, addr) = start("basic", 3, ServeConfig::default());
        let (mut w, mut r) = connect(addr);

        let reply = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":2,"id":"t0"}"#);
        assert!(reply.get("hits").is_some(), "{reply:?}");
        assert_eq!(reply.get("corpus").unwrap().as_f64(), Some(3.0));

        // Typed client error, connection stays usable.
        let reply = roundtrip(&mut w, &mut r, r#"{"mode":"join","id":"nope"}"#);
        assert_eq!(
            reply.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("unknown_table")
        );

        let reply = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
        let stats = reply.get("stats").expect("stats object");
        assert_eq!(stats.get("tables").unwrap().as_f64(), Some(3.0));
        let requests = stats.get("requests").unwrap();
        assert_eq!(requests.get("total").unwrap().as_f64(), Some(3.0));
        assert_eq!(requests.get("ok").unwrap().as_f64(), Some(2.0));
        assert_eq!(requests.get("client_error").unwrap().as_f64(), Some(1.0));
        let lat = stats.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(1.0));

        drop((w, r));
        stop(&handle, join);
    }

    /// Spin until `probe` is true or ~2s elapse. The pool updates its
    /// counters after the client-visible effect (the dropped socket), so
    /// tests must tolerate that small window.
    fn wait_until(probe: impl Fn() -> bool) -> bool {
        for _ in 0..2000 {
            if probe() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        probe()
    }

    #[test]
    fn pool_survives_panicking_connection_handlers() {
        let (handle, join, addr) = start("panic", 2, ServeConfig::default());

        // Two injected panics in a row: the pool must absorb both with
        // balanced counters, not leak capacity one panic at a time.
        for round in 1..=2u64 {
            handle.shared.panic_next_connection.store(true, Ordering::Relaxed);
            let (w, mut r) = connect(addr);
            let mut line = String::new();
            let n = r.read_line(&mut line).unwrap();
            assert_eq!(n, 0, "round {round}: panicked handler must drop the connection, got {line:?}");
            drop((w, r));
            assert!(
                wait_until(|| handle.metrics().worker_panics == round),
                "round {round}: worker_panics stuck at {}",
                handle.metrics().worker_panics
            );
        }

        // The pool still serves after the panics.
        let (mut w, mut r) = connect(addr);
        let reply = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t0"}"#);
        assert!(reply.get("hits").is_some(), "{reply:?}");
        drop((w, r));

        assert_eq!(handle.metrics().worker_panics, 2);
        assert!(
            wait_until(|| handle.metrics().active == 0),
            "active counter must be balanced across panics, got {}",
            handle.metrics().active
        );
        stop(&handle, join);
    }

    #[test]
    fn metrics_and_slowlog_verbs_report_observability() {
        let (handle, join, addr) = start("obsverbs", 2, ServeConfig::default());
        let (mut w, mut r) = connect(addr);

        // A profiled query returns a stage breakdown that sums exactly to
        // the reported engine micros; an unprofiled one stays clean.
        let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t0","profile":true}"#);
        let Json::Arr(stages) = v.get("profile").expect("profile requested") else { panic!() };
        assert!(!stages.is_empty());
        let sum: f64 = stages
            .iter()
            .map(|s| {
                let Json::Arr(pair) = s else { panic!("stage is [name, us]: {s:?}") };
                pair[1].as_f64().unwrap()
            })
            .sum();
        assert_eq!(Some(sum), v.get("micros").unwrap().as_f64(), "{v:?}");
        let v = roundtrip(&mut w, &mut r, r#"{"mode":"union","k":1,"id":"t1"}"#);
        assert!(v.get("profile").is_none(), "profile must be opt-in: {v:?}");

        // The metrics verb answers parseable Prometheus text counting the
        // two queries above plus (like stats) the metrics request itself.
        let v = roundtrip(&mut w, &mut r, r#"{"op":"metrics"}"#);
        let text = v.get("metrics").expect("metrics payload").as_str().unwrap();
        assert!(text.contains("# TYPE tsfm_serve_requests_total counter"), "{text}");
        assert!(text.contains("tsfm_serve_requests_total{outcome=\"ok\"} 3\n"), "{text}");
        assert!(text.contains("tsfm_serve_tables 2\n"), "{text}");
        assert!(handle.prometheus_text().contains("tsfm_serve_requests_total"));

        // The slowlog kept both queries — each with a stage breakdown
        // even though only one client asked to see its profile.
        let v = roundtrip(&mut w, &mut r, r#"{"op":"slowlog"}"#);
        let Json::Arr(entries) = v.get("slowlog").expect("slowlog payload") else { panic!() };
        assert_eq!(entries.len(), 2, "{v:?}");
        for e in entries {
            let Json::Arr(st) = e.get("stages").unwrap() else { panic!("{e:?}") };
            assert!(!st.is_empty(), "every entry carries stages: {e:?}");
            assert!(e.get("micros").unwrap().as_f64().unwrap() >= 0.0);
        }
        // Slowest first.
        let micros: Vec<f64> =
            entries.iter().map(|e| e.get("micros").unwrap().as_f64().unwrap()).collect();
        assert!(micros[0] >= micros[1], "{micros:?}");
        assert_eq!(handle.slowlog().len(), 2);

        stop(&handle, join);
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (handle, join, addr) = start("pipeline", 4, ServeConfig::default());
        let (mut w, mut r) = connect(addr);
        // Fire a burst without reading a single reply.
        for i in 0..4 {
            writeln!(w, "{{\"mode\":\"join\",\"k\":1,\"id\":\"t{i}\"}}").unwrap();
        }
        w.flush().unwrap();
        for i in 0..4 {
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            let v = wire::parse_json(line.trim()).unwrap();
            assert_eq!(v.get("query").unwrap().as_str(), Some(format!("t{i}").as_str()));
        }
        drop((w, r));
        stop(&handle, join);
    }

    #[test]
    fn oversized_line_gets_typed_error_then_close() {
        let cfg = ServeConfig { max_line_bytes: 256, ..ServeConfig::default() };
        let (handle, join, addr) = start("cap", 1, cfg);
        let (mut w, mut r) = connect(addr);
        // 4 KiB with no newline: far past the cap.
        w.write_all(&vec![b'x'; 4096]).unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let v = wire::parse_json(line.trim()).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("invalid_request")
        );
        assert!(
            v.get("error").unwrap().get("detail").unwrap().as_str().unwrap().contains("exceeds"),
            "{line}"
        );
        // Connection must now be closed.
        let mut rest = String::new();
        r.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert!(handle.metrics().overlong_lines >= 1);
        stop(&handle, join);
    }

    #[test]
    fn slow_request_line_is_cut_at_the_absolute_deadline() {
        let cfg = ServeConfig {
            read_timeout: Duration::from_millis(300),
            idle_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let (handle, join, addr) = start("loris", 1, cfg);
        let (mut w, mut r) = connect(addr);
        // Trickle bytes forever without a newline: the absolute deadline
        // must cut us off even though each byte "resets" nothing.
        let t0 = Instant::now();
        let mut reply = String::new();
        loop {
            if w.write_all(b"x").and_then(|()| w.flush()).is_err() {
                break; // server closed its read half
            }
            // A reply means the server sent the slow-read error.
            w.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            match r.read_line(&mut reply) {
                Ok(0) => break,
                Ok(_) => break,
                Err(_) => {} // nothing yet, keep trickling
            }
            std::thread::sleep(Duration::from_millis(30));
            assert!(t0.elapsed() < Duration::from_secs(10), "never cut off");
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(250),
            "cut off before the deadline: {:?}",
            t0.elapsed()
        );
        if !reply.trim().is_empty() {
            let v = wire::parse_json(reply.trim()).unwrap();
            assert!(v.get("error").is_some(), "{reply}");
        }
        // Meanwhile the server still answers a healthy connection.
        let (mut w2, mut r2) = connect(addr);
        let ok = roundtrip(&mut w2, &mut r2, r#"{"mode":"join","k":1,"id":"t0"}"#);
        assert!(ok.get("hits").is_some());
        assert!(handle.metrics().closed_slow_read >= 1);
        stop(&handle, join);
    }

    #[test]
    fn idle_connections_are_reaped() {
        let cfg = ServeConfig {
            idle_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let (handle, join, addr) = start("idle", 1, cfg);
        let (w, mut r) = connect(addr);
        let t0 = Instant::now();
        let mut rest = String::new();
        r.read_to_string(&mut rest).unwrap(); // blocks until server closes
        assert!(rest.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(250));
        assert!(t0.elapsed() < Duration::from_secs(10));
        assert!(handle.metrics().closed_idle >= 1);
        drop(w);
        stop(&handle, join);
    }

    #[test]
    fn pool_stays_bounded_and_workers_are_reused() {
        let cfg = ServeConfig {
            max_connections: 2,
            worker_linger: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let (handle, join, addr) = start("pool", 1, cfg);
        for _ in 0..20 {
            let (mut w, mut r) = connect(addr);
            let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t0"}"#);
            assert!(v.get("hits").is_some());
        }
        assert!(
            handle.worker_count() <= 2,
            "pool exceeded its bound: {} workers",
            handle.worker_count()
        );
        let m = handle.metrics();
        assert_eq!(m.accepted, 20);
        assert_eq!(m.requests_ok, 20);
        stop(&handle, join);
    }

    #[test]
    fn overload_sheds_with_an_unavailable_reply() {
        let cfg = ServeConfig {
            max_connections: 1,
            pending_capacity: 0,
            idle_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let (handle, join, addr) = start("shed", 1, cfg);
        // Occupy the only worker with a held-open connection, and prove
        // it is being served before provoking the shed.
        let (mut w1, mut r1) = connect(addr);
        let v = roundtrip(&mut w1, &mut r1, r#"{"mode":"join","k":1,"id":"t0"}"#);
        assert!(v.get("hits").is_some());

        // The next connection must be refused with a parseable line.
        let (_w2, mut r2) = connect(addr);
        let mut line = String::new();
        r2.read_line(&mut line).unwrap();
        let v = wire::parse_json(line.trim()).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("unavailable"));
        assert_eq!(v.get("client").unwrap().as_bool(), Some(false));
        assert!(handle.metrics().shed >= 1);

        // The first connection is still fine.
        let v = roundtrip(&mut w1, &mut r1, r#"{"op":"stats"}"#);
        assert!(v.get("stats").is_some());
        stop(&handle, join);
    }

    #[test]
    fn hot_swap_serves_new_snapshot_without_dropping_the_connection() {
        let (handle, join, addr) = start("swap", 1, ServeConfig::default());
        let (mut w, mut r) = connect(addr);
        let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t0"}"#);
        assert_eq!(v.get("corpus").unwrap().as_f64(), Some(1.0));

        // Build a bigger catalog and swap it in mid-connection.
        let (bigger, _dir) = searcher_with("swap_big", 3);
        assert_eq!(handle.swap_searcher(bigger), 1);

        let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t2"}"#);
        assert_eq!(v.get("corpus").unwrap().as_f64(), Some(3.0), "new snapshot visible");
        let v = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
        assert_eq!(v.get("stats").unwrap().get("reloads").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("stats").unwrap().get("tables").unwrap().as_f64(), Some(3.0));
        stop(&handle, join);
    }

    #[test]
    fn graceful_shutdown_finishes_in_flight_requests() {
        let (handle, join, addr) = start("shutdown", 1, ServeConfig::default());
        let (mut w, mut r) = connect(addr);
        let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t0"}"#);
        assert!(v.get("hits").is_some());
        stop(&handle, join);
        // New connections are refused once run() has returned.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        let mut buf = [0u8; 1];
                        s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
                        s.read(&mut buf).map(|n| n == 0)
                    })
                    .unwrap_or(true),
            "server still serving after shutdown"
        );
    }

    #[test]
    fn invalid_utf8_line_is_answered_not_fatal() {
        let (handle, join, addr) = start("utf8", 1, ServeConfig::default());
        let (mut w, mut r) = connect(addr);
        w.write_all(&[0xff, 0xfe, b'\n']).unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let v = wire::parse_json(line.trim()).unwrap();
        assert!(
            v.get("error").unwrap().get("detail").unwrap().as_str().unwrap().contains("UTF-8")
        );
        // Still serving on the same connection.
        let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":1,"id":"t0"}"#);
        assert!(v.get("hits").is_some());
        stop(&handle, join);
    }

    #[test]
    fn execute_with_neither_csv_nor_id_is_a_typed_error() {
        // The old serve loop had `unreachable!` here; it must be a typed
        // InvalidRequest even though parse_line rejects the shape today.
        let (searcher, _dir) = searcher_with("neither", 1);
        let parsed = ServeRequest::parse_line(r#"{"mode":"join","id":"t0"}"#).unwrap();
        let req = ServeRequest { csv: None, id: None, ..parsed };
        match execute(&searcher, &req) {
            Err(StoreError::InvalidRequest(msg)) => {
                assert!(msg.contains("query table"), "{msg}")
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn config_validation() {
        let (searcher, _dir) = searcher_with("cfg", 1);
        let bad = ServeConfig { max_connections: 0, ..ServeConfig::default() };
        assert!(matches!(
            Server::bind("127.0.0.1:0", searcher.clone(), bad),
            Err(StoreError::InvalidRequest(_))
        ));
        let bad = ServeConfig { max_line_bytes: 0, ..ServeConfig::default() };
        assert!(matches!(
            Server::bind("127.0.0.1:0", searcher, bad),
            Err(StoreError::InvalidRequest(_))
        ));
    }
}
