//! The bounded worker pool behind the serve frontend — the only module
//! in the workspace allowed to call `std::thread::spawn` (the
//! `no-spawn-outside-pool` lint pins it here).
//!
//! Two containment properties matter more than the dispatch mechanics:
//!
//! * **Panics stop at the worker.** A connection handler that panics is
//!   caught right here; the worker counts it
//!   (`tsfm_serve_worker_panics_total`), closes that connection, and goes
//!   back to the queue. Without the catch, one panicking handler would
//!   unwind through the worker while the `active`/`workers` counters
//!   still include it — the pool believes it has capacity it no longer
//!   has, and under load the acceptor sheds forever.
//! * **Poison stops nowhere.** All queue/condvar access goes through
//!   [`tsfm_obs::sync`]: even if a panic escapes while the queue mutex is
//!   held (an allocation failure inside `push_back`, say), the other
//!   workers and the acceptor recover the guard instead of cascading the
//!   panic through every `.lock().unwrap()` in the process.

use super::{serve_connection, Shared};
use crate::wire;
use std::io::Write;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tsfm_obs::sync::{lock_unpoisoned, wait_timeout_unpoisoned};

/// Shed / enqueue / spawn decision for one accepted connection, made
/// under the queue lock so it sees a coherent queue depth. Shed when
/// every worker slot is taken, none is idle, and the pending queue is
/// full: a parseable refusal beats stalling the client or growing
/// without bound.
pub(super) fn dispatch(shared: &Arc<Shared>, stream: TcpStream, joins: &mut Vec<JoinHandle<()>>) {
    let workers_now = shared.workers.load(Ordering::Relaxed);
    let idle_now = shared.idle_workers.load(Ordering::Relaxed);
    let need_spawn = {
        let mut q = lock_unpoisoned(&shared.queue);
        if workers_now >= shared.cfg.max_connections
            && idle_now == 0
            && q.len() >= shared.cfg.pending_capacity
        {
            drop(q);
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            shed(stream);
            return;
        }
        q.push_back(stream);
        // Spawn on queue depth, not on `idle == 0`: during a connect
        // burst a just-notified worker is still counted idle, and gating
        // on the stale flag would strand the whole burst behind one
        // worker.
        workers_now < shared.cfg.max_connections && idle_now < q.len()
    };
    if need_spawn {
        shared.workers.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        joins.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    shared.queue_cv.notify_one();
}

/// Best-effort one-line refusal to a connection we will not serve. Must
/// never block the acceptor: tiny write, short timeout.
fn shed(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut s = stream;
    let _ = s.write_all(wire::unavailable_json("server at connection capacity").as_bytes());
    let _ = s.write_all(b"\n");
}

/// Worker: serve queued connections until the pool shuts down or the
/// worker has lingered idle too long.
pub(super) fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let conn = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    shared.workers.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                if let Some(c) = q.pop_front() {
                    break c;
                }
                shared.idle_workers.fetch_add(1, Ordering::Relaxed);
                let (guard, timeout) =
                    wait_timeout_unpoisoned(&shared.queue_cv, q, shared.cfg.worker_linger);
                q = guard;
                shared.idle_workers.fetch_sub(1, Ordering::Relaxed);
                if timeout.timed_out() && q.is_empty() {
                    // Lingered long enough: trim the pool.
                    shared.workers.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
            }
        };
        shared.metrics.active.fetch_add(1, Ordering::Relaxed);
        // Contain handler panics to this connection: the worker itself
        // must survive, with its counters balanced, or the pool leaks
        // capacity one panic at a time. `AssertUnwindSafe` is sound here
        // because everything the closure touches is either owned (the
        // stream, dropped on unwind) or lock-free/poison-tolerant shared
        // state that is valid at every intermediate step.
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(shared, conn)));
        shared.metrics.active.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}
