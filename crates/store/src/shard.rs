//! The shard layer: hash-partitioned manifests and flat sketch arenas.
//!
//! A compacted catalog keeps the bulk of its tables out of the root
//! manifest, partitioned into `shards/` by the top bits of each table
//! id's hash (stable under content updates, so a table never migrates
//! shards on re-ingest). Each shard is a pair of files sharing a
//! generation-stamped name:
//!
//! ```text
//! <dir>/shards/s042-0000000b.shard   TSFMSHD1: per-table metadata, sorted by id
//! <dir>/shards/s042-0000000b.arena   TSFMARN1: offset table + raw TSFMSEG1 payloads
//! ```
//!
//! The shard manifest is an ordinary CRC'd v2 frame (the [`crate::ser`]
//! machinery) listing `(id, content_hash, num_rows, num_cols)` per slot.
//! The arena is *not* a whole-file frame — the point is never reading all
//! of it — but a fixed-width layout made for positioned reads:
//!
//! ```text
//! magic(8) · version (u32) · shard_index (u32) · generation (u64) ·
//! count (u64) · index_crc (u32) ·                 ← 36-byte header
//! count × (offset u64 · len u64 · crc u32) ·      ← offset table, CRC'd as a unit
//! concatenated TSFMSEG1 frame bytes               ← payloads, CRC'd per slot
//! ```
//!
//! `index_crc` (CRC32C over the raw offset-table bytes) makes a flipped
//! bit in the table itself detectable before any offset is trusted;
//! each payload's own CRC is then verified by
//! [`crate::durable::read_at_checked`] on every positioned read, so a
//! lazy sketch load can never return silently corrupt bytes. Slot `i` of
//! the arena belongs to entry `i` of the shard manifest.
//!
//! Both files are written whole through [`crate::durable::commit_file`]
//! under a *new* generation number; the root manifest flips to the new
//! generation in one atomic commit and only then are old-generation
//! files unlinked — readers holding the old files' descriptors (a
//! [`LazyCorpus`] snapshot taken before a compaction) keep reading them
//! untouched.

use crate::durable;
use crate::error::{StoreError, StoreResult};
use crate::record::TableRecord;
use crate::ser::{self, ARENA_MAGIC, SHARD_MAGIC};
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tsfm_obs::sync::lock_unpoisoned;
use tsfm_sketch::TableSketch;
use tsfm_table::hash::hash_str;

/// Subdirectory of the catalog holding shard manifest + arena pairs.
pub const SHARD_DIR: &str = "shards";

/// Compaction aims for this many tables per shard; the shard count is
/// the next power of two that gets under it, capped at [`MAX_SHARDS`].
pub(crate) const SHARD_TARGET_TABLES: u64 = 4096;

/// Upper bound on the shard space (the root manifest stays O(shards)
/// tiny, and 256 shards × [`SHARD_TARGET_TABLES`] covers ~1M tables).
pub(crate) const MAX_SHARDS: u64 = 256;

/// A loose-only catalog auto-compacts into shards at its first commit
/// with at least this many tables.
pub(crate) const AUTO_SHARD_MIN: u64 = 4096;

/// Default capacity of a lazy snapshot's LRU sketch cache.
pub(crate) const SKETCH_CACHE_CAP: usize = 4096;

const ARENA_HEADER_LEN: u64 = 36;
const ARENA_SLOT_LEN: u64 = 20;

/// Shard count for a catalog of `tables` active tables.
pub(crate) fn shard_count_for(tables: u64) -> u32 {
    tables
        .div_ceil(SHARD_TARGET_TABLES)
        .max(1)
        .next_power_of_two()
        .min(MAX_SHARDS) as u32
}

/// Which shard of a `shard_count`-wide space (a power of two) owns `id`.
/// Top bits of the id hash, so the assignment is stable when the shard
/// space is unchanged and refines evenly when it doubles.
pub(crate) fn shard_of(id: &str, shard_count: u32) -> u32 {
    debug_assert!(shard_count.is_power_of_two());
    if shard_count <= 1 {
        return 0;
    }
    (hash_str(id) >> (64 - shard_count.trailing_zeros())) as u32
}

pub(crate) fn shard_file_name(index: u32, generation: u64) -> String {
    format!("s{index:03}-{generation:08x}.shard")
}

pub(crate) fn arena_file_name(index: u32, generation: u64) -> String {
    format!("s{index:03}-{generation:08x}.arena")
}

/// Root-manifest metadata for one shard: everything `Catalog::open`
/// needs without touching the shard's own files, plus the aggregates
/// that keep `stats` O(shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    pub index: u32,
    pub generation: u64,
    pub entry_count: u64,
    pub total_rows: u64,
    pub total_cols: u64,
    /// Exact size of the arena file, validated against the filesystem
    /// before any offset in it is trusted.
    pub arena_bytes: u64,
}

impl ShardMeta {
    pub fn shard_file(&self) -> String {
        shard_file_name(self.index, self.generation)
    }

    pub fn arena_file(&self) -> String {
        arena_file_name(self.index, self.generation)
    }
}

/// One table's metadata inside a shard manifest. Slot `i` of the shard's
/// arena holds the corresponding `TSFMSEG1` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    pub id: String,
    pub content_hash: u64,
    pub num_rows: u64,
    pub num_cols: u32,
}

/// A decoded `TSFMSHD1` shard manifest: entries sorted by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    pub index: u32,
    /// The shard-space width this shard was written under (sanity-checked
    /// against the root manifest).
    pub shard_count: u32,
    pub generation: u64,
    pub entries: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Binary-search a table id (entries are sorted and unique).
    pub fn find(&self, id: &str) -> Option<usize> {
        self.entries.binary_search_by(|e| e.id.as_str().cmp(id)).ok()
    }
}

/// Serialize and durably commit a shard manifest.
pub(crate) fn write_shard_manifest(path: &Path, m: &ShardManifest) -> StoreResult<()> {
    let mut body = Vec::new();
    ser::write_u32(&mut body, m.index)?;
    ser::write_u32(&mut body, m.shard_count)?;
    ser::write_u64(&mut body, m.generation)?;
    ser::write_u64(&mut body, m.entries.len() as u64)?;
    for e in &m.entries {
        ser::write_str(&mut body, &e.id)?;
        ser::write_u64(&mut body, e.content_hash)?;
        ser::write_u64(&mut body, e.num_rows)?;
        ser::write_u32(&mut body, e.num_cols)?;
    }
    let mut file = Vec::with_capacity(body.len() + 24);
    ser::write_frame(&mut file, SHARD_MAGIC, &body)?;
    durable::commit_file(path, &file)
}

/// Read and verify a shard manifest file.
pub fn read_shard_manifest(path: &Path) -> StoreResult<ShardManifest> {
    durable::read_file_checked(path, |r| {
        let res = match ser::read_frame(r, SHARD_MAGIC, "TSFM shard manifest") {
            // The shard layer postdates checksummed frames; a v1 shard
            // cannot have been written by any release.
            Ok(ser::Payload::Legacy) => {
                Err(StoreError::corrupt(SHARD_MAGIC_STR, "v1 shard manifests do not exist"))
            }
            Ok(ser::Payload::Framed(body)) => ser::parse_framed(&body, read_shard_manifest_body),
            Err(e) => Err(e),
        };
        res.map_err(|e| e.into_format(SHARD_MAGIC_STR))
    })
}

const SHARD_MAGIC_STR: &str = "TSFMSHD1";
const ARENA_MAGIC_STR: &str = "TSFMARN1";

fn read_shard_manifest_body(r: &mut &[u8]) -> StoreResult<ShardManifest> {
    let index = ser::read_u32(r)?;
    let shard_count = ser::read_u32(r)?;
    if shard_count == 0
        || u64::from(shard_count) > MAX_SHARDS
        || !shard_count.is_power_of_two()
        || index >= shard_count
    {
        return Err(StoreError::corrupt(
            SHARD_MAGIC_STR,
            format!("implausible shard geometry: index {index} of {shard_count}"),
        ));
    }
    let generation = ser::read_u64(r)?;
    let count = ser::read_u64(r)? as usize;
    if count > 1 << 24 {
        return Err(StoreError::corrupt(
            SHARD_MAGIC_STR,
            format!("unreasonable shard entry count {count}"),
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let e = ShardEntry {
            id: ser::read_str(r)?,
            content_hash: ser::read_u64(r)?,
            num_rows: ser::read_u64(r)?,
            num_cols: ser::read_u32(r)?,
        };
        if let Some(prev) = entries.last() {
            let prev: &ShardEntry = prev;
            if prev.id >= e.id {
                return Err(StoreError::corrupt(
                    SHARD_MAGIC_STR,
                    format!("shard entries out of order at slot {i} ({:?} >= {:?})", prev.id, e.id),
                ));
            }
        }
        if shard_of(&e.id, shard_count) != index {
            return Err(StoreError::corrupt(
                SHARD_MAGIC_STR,
                format!("table {:?} does not hash into shard {index} of {shard_count}", e.id),
            ));
        }
        entries.push(e);
    }
    Ok(ShardManifest { index, shard_count, generation, entries })
}

/// One slot of an arena's offset table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSlot {
    /// Absolute file offset of the payload.
    pub offset: u64,
    pub len: u64,
    /// CRC32C of the payload bytes, verified on every positioned read.
    pub crc: u32,
}

/// Build the full byte image of an arena file for `payloads` (each one a
/// complete `TSFMSEG1` frame), in slot order.
pub(crate) fn build_arena(index: u32, generation: u64, payloads: &[Vec<u8>]) -> Vec<u8> {
    let table_len = ARENA_SLOT_LEN * payloads.len() as u64;
    let mut data_offset = ARENA_HEADER_LEN + table_len;
    let mut table = Vec::with_capacity(table_len as usize);
    for p in payloads {
        table.extend_from_slice(&data_offset.to_le_bytes());
        table.extend_from_slice(&(p.len() as u64).to_le_bytes());
        table.extend_from_slice(&durable::crc32c(p).to_le_bytes());
        data_offset += p.len() as u64;
    }
    let mut out = Vec::with_capacity(data_offset as usize);
    out.extend_from_slice(ARENA_MAGIC);
    out.extend_from_slice(&ser::FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payloads.len() as u64).to_le_bytes());
    out.extend_from_slice(&durable::crc32c(&table).to_le_bytes());
    out.extend_from_slice(&table);
    for p in payloads {
        out.extend_from_slice(p);
    }
    out
}

/// An open arena: the file handle plus its verified offset table. Opening
/// reads exactly the header and the offset table — payload bytes stay on
/// disk until a positioned read asks for them. The handle outlives
/// compaction: new generations are written to new names and the old file
/// is unlinked, so a snapshot holding an `ArenaIndex` keeps reading the
/// generation it captured.
#[derive(Debug)]
pub struct ArenaIndex {
    file: File,
    path: PathBuf,
    pub index: u32,
    pub generation: u64,
    pub slots: Vec<ArenaSlot>,
}

impl ArenaIndex {
    /// Open and verify an arena against its root-manifest metadata.
    /// Header-field disagreement, a bad offset-table checksum, or any
    /// out-of-bounds slot is a typed [`StoreError::Corrupt`] naming the
    /// shard and offset.
    pub fn open(path: &Path, meta: &ShardMeta) -> StoreResult<Self> {
        use std::os::unix::fs::FileExt;
        let corrupt = |offset: u64, detail: String| {
            durable::note_corruption(
                StoreError::corrupt(ARENA_MAGIC_STR, detail).with_file(path, offset),
            )
        };
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len != meta.arena_bytes {
            return Err(corrupt(
                file_len.min(meta.arena_bytes),
                format!(
                    "arena of shard {} is {file_len} bytes, root manifest says {}",
                    meta.index, meta.arena_bytes
                ),
            ));
        }
        let mut header = [0u8; ARENA_HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)
            .map_err(|_| corrupt(0, "arena shorter than its header".into()))?;
        if &header[..8] != ARENA_MAGIC {
            return Err(corrupt(0, "not a TSFM arena (bad magic)".into()));
        }
        // The fixed-width fields after the magic, in layout order (the
        // cursor reads cannot fail: `header` is exactly ARENA_HEADER_LEN).
        let mut fields = &header[8..];
        let version = ser::read_u32(&mut fields)?;
        if version != ser::FORMAT_VERSION {
            return Err(corrupt(8, format!("unsupported arena version {version}")));
        }
        let index = ser::read_u32(&mut fields)?;
        let generation = ser::read_u64(&mut fields)?;
        let count = ser::read_u64(&mut fields)?;
        let index_crc = ser::read_u32(&mut fields)?;
        if index != meta.index || generation != meta.generation || count != meta.entry_count {
            return Err(corrupt(
                12,
                format!(
                    "arena header (shard {index}, generation {generation}, {count} slots) \
                     does not match the root manifest (shard {}, generation {}, {} slots)",
                    meta.index, meta.generation, meta.entry_count
                ),
            ));
        }
        let table_len = ARENA_SLOT_LEN
            .checked_mul(count)
            .filter(|l| ARENA_HEADER_LEN + l <= file_len)
            .ok_or_else(|| {
                corrupt(24, format!("offset table of {count} slots exceeds the arena file"))
            })?;
        let mut table = vec![0u8; table_len as usize];
        file.read_exact_at(&mut table, ARENA_HEADER_LEN)
            .map_err(|_| corrupt(ARENA_HEADER_LEN, "arena truncated inside its offset table".into()))?;
        let actual = durable::crc32c(&table);
        if actual != index_crc {
            return Err(corrupt(
                ARENA_HEADER_LEN,
                format!(
                    "offset-table checksum mismatch in shard {index}: \
                     stored {index_crc:#010x}, computed {actual:#010x}"
                ),
            ));
        }
        let data_start = ARENA_HEADER_LEN + table_len;
        let mut slots = Vec::with_capacity(count as usize);
        let mut expect = data_start;
        for (i, mut raw) in table.chunks_exact(ARENA_SLOT_LEN as usize).enumerate() {
            let slot = ArenaSlot {
                offset: ser::read_u64(&mut raw)?,
                len: ser::read_u64(&mut raw)?,
                crc: ser::read_u32(&mut raw)?,
            };
            // Slots must tile the data region exactly: contiguous,
            // in-bounds, nothing overlapping and nothing unaccounted.
            if slot.offset != expect
                || !slot.offset.checked_add(slot.len).is_some_and(|e| e <= file_len)
            {
                return Err(corrupt(
                    ARENA_HEADER_LEN + ARENA_SLOT_LEN * i as u64,
                    format!(
                        "slot {i} of shard {index} ({} bytes at offset {}) breaks the arena layout",
                        slot.len, slot.offset
                    ),
                ));
            }
            expect += slot.len;
            slots.push(slot);
        }
        if expect != file_len {
            return Err(corrupt(
                expect,
                format!("arena of shard {index} has {} trailing bytes", file_len - expect),
            ));
        }
        Ok(Self { file, path: path.to_path_buf(), index, generation, slots })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Positioned, CRC-verified read of one slot's raw payload bytes.
    pub fn read_payload(&self, slot: usize) -> StoreResult<Vec<u8>> {
        let s = self.slots.get(slot).ok_or_else(|| {
            StoreError::corrupt(
                ARENA_MAGIC_STR,
                format!("slot {slot} out of range ({} slots)", self.slots.len()),
            )
        })?;
        durable::read_at_checked(&self.file, &self.path, s.offset, s.len, s.crc, ARENA_MAGIC_STR)
    }

    /// Read and decode one slot's [`TableRecord`].
    pub fn read_record(&self, slot: usize) -> StoreResult<TableRecord> {
        let offset = self.slots.get(slot).map_or(0, |s| s.offset);
        let bytes = self.read_payload(slot)?;
        ser::read_record(&mut bytes.as_slice())
            .map_err(|e| durable::note_corruption(e.with_file(&self.path, offset)))
    }
}

// ---- the lazy corpus -------------------------------------------------------

/// One shard as seen by a lazy snapshot: the open arena plus the active
/// `(id, slot)` pairs at capture time, ascending by id.
pub(crate) struct LazyShard {
    pub arena: Arc<ArenaIndex>,
    pub entries: Vec<(String, u32)>,
}

/// The lazy snapshot corpus: sketch payloads stay in their arenas and
/// are loaded by positioned read on first use, with an LRU-bounded cache
/// in front ([`SKETCH_CACHE_CAP`]). Loose (not-yet-compacted) tables are
/// held eagerly — they are the recent-churn minority. Holding the arena
/// `File` handles means a compaction (which writes new generations and
/// unlinks the old files) never invalidates a live snapshot.
pub struct LazyCorpus {
    shard_count: u32,
    shards: Vec<Option<LazyShard>>,
    /// Eager sketches of loose tables, ascending by table id.
    loose: Vec<Arc<TableSketch>>,
    cache: Mutex<SketchCache>,
    hits: Arc<tsfm_obs::metrics::Counter>,
    misses: Arc<tsfm_obs::metrics::Counter>,
    len: usize,
}

impl LazyCorpus {
    pub(crate) fn new(
        shard_count: u32,
        shards: Vec<Option<LazyShard>>,
        loose: Vec<Arc<TableSketch>>,
        cache_cap: usize,
    ) -> Self {
        debug_assert!(loose.windows(2).all(|w| w[0].table_id < w[1].table_id));
        let obs = tsfm_obs::metrics::global();
        let len = loose.len()
            + shards.iter().flatten().map(|s| s.entries.len()).sum::<usize>();
        Self {
            shard_count,
            shards,
            loose,
            cache: Mutex::new(SketchCache::new(cache_cap)),
            hits: obs.counter(
                "tsfm_store_shard_cache_hits_total",
                "Lazy sketch loads answered by the shard cache",
            ),
            misses: obs.counter(
                "tsfm_store_shard_cache_misses_total",
                "Lazy sketch loads that went to an arena read",
            ),
            len,
        }
    }

    /// Number of tables in the snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sketch of `id`, or `None` if the snapshot has no such table.
    /// Loose tables answer from memory; shard-resident tables from the
    /// cache or a positioned arena read.
    pub fn sketch_of(&self, id: &str) -> StoreResult<Option<Arc<TableSketch>>> {
        if let Ok(i) = self.loose.binary_search_by(|s| s.table_id.as_str().cmp(id)) {
            return Ok(Some(Arc::clone(&self.loose[i])));
        }
        if self.shard_count == 0 {
            return Ok(None);
        }
        let Some(shard) = &self.shards[shard_of(id, self.shard_count) as usize] else {
            return Ok(None);
        };
        let Ok(i) = shard.entries.binary_search_by(|(eid, _)| eid.as_str().cmp(id)) else {
            return Ok(None);
        };
        if let Some(hit) = lock_unpoisoned(&self.cache).get(id) {
            self.hits.inc();
            return Ok(Some(hit));
        }
        self.misses.inc();
        let slot = shard.entries[i].1 as usize;
        let rec = shard.arena.read_record(slot)?;
        if rec.table_id() != id {
            return Err(durable::note_corruption(StoreError::corrupt(
                ARENA_MAGIC_STR,
                format!(
                    "arena slot {slot} of shard {} holds {:?}, manifest says {id:?}",
                    shard.arena.index,
                    rec.table_id()
                ),
            )));
        }
        let sketch = Arc::new(rec.sketch);
        lock_unpoisoned(&self.cache).insert(id, Arc::clone(&sketch));
        Ok(Some(sketch))
    }
}

/// A small LRU keyed by table id. Recency is a monotonically stamped
/// `BTreeMap` index, so get/insert/evict are all `O(log cap)`.
struct SketchCache {
    cap: usize,
    stamp: u64,
    map: HashMap<String, (Arc<TableSketch>, u64)>,
    order: std::collections::BTreeMap<u64, String>,
}

impl SketchCache {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            stamp: 0,
            map: HashMap::new(),
            order: std::collections::BTreeMap::new(),
        }
    }

    fn get(&mut self, id: &str) -> Option<Arc<TableSketch>> {
        let (sketch, at) = self.map.get_mut(id)?;
        let hit = Arc::clone(sketch);
        let old = *at;
        self.stamp += 1;
        *at = self.stamp;
        self.order.remove(&old);
        self.order.insert(self.stamp, id.to_string());
        Some(hit)
    }

    fn insert(&mut self, id: &str, sketch: Arc<TableSketch>) {
        if self.cap == 0 {
            return;
        }
        self.stamp += 1;
        if let Some((_, old)) = self.map.insert(id.to_string(), (sketch, self.stamp)) {
            self.order.remove(&old);
        }
        self.order.insert(self.stamp, id.to_string());
        while self.map.len() > self.cap {
            let Some((_, victim)) = self.order.pop_first() else { break };
            self.map.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_sketch::SketchConfig;
    use tsfm_table::{Column, Table, Value};

    fn record(id: &str, vals: &[i64]) -> TableRecord {
        let mut t = Table::new(id, id);
        t.push_column(Column::new("v", vals.iter().map(|&v| Value::Int(v)).collect()));
        let sketch = TableSketch::build(&t, &SketchConfig::default());
        TableRecord::from_sketch(sketch, hash_str(id))
    }

    fn payload(rec: &TableRecord) -> Vec<u8> {
        let mut buf = Vec::new();
        ser::write_record(&mut buf, rec).unwrap();
        buf
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tsfm_shard_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_geometry_is_stable_and_bounded() {
        assert_eq!(shard_count_for(0), 1);
        assert_eq!(shard_count_for(4096), 1);
        assert_eq!(shard_count_for(4097), 2);
        assert_eq!(shard_count_for(100_000), 32);
        assert_eq!(shard_count_for(u64::MAX), MAX_SHARDS as u32);
        for id in ["a", "b", "weird id/with:stuff", ""] {
            assert_eq!(shard_of(id, 1), 0);
            let wide = shard_of(id, 256);
            assert!(wide < 256);
            // Halving the space coarsens the same prefix, so entries
            // only ever merge, never scatter, when the space shrinks.
            assert_eq!(shard_of(id, 128), wide / 2);
        }
    }

    #[test]
    fn shard_manifest_roundtrip_and_ordering_check() {
        let dir = tmp("manifest");
        // Pick ids that actually hash into shard 0 of 2.
        let ids: Vec<String> = (0..200)
            .map(|i| format!("table_{i:03}"))
            .filter(|id| shard_of(id, 2) == 0)
            .take(6)
            .collect();
        let mut entries: Vec<ShardEntry> = ids
            .iter()
            .map(|id| ShardEntry {
                id: id.clone(),
                content_hash: hash_str(id),
                num_rows: 3,
                num_cols: 1,
            })
            .collect();
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        let m = ShardManifest { index: 0, shard_count: 2, generation: 7, entries };
        let path = dir.join(shard_file_name(0, 7));
        write_shard_manifest(&path, &m).unwrap();
        let back = read_shard_manifest(&path).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.find(&m.entries[2].id), Some(2));
        assert_eq!(back.find("not here"), None);

        // Out-of-order entries are corruption, not a bad binary search.
        let mut swapped = m;
        swapped.entries.swap(0, 1);
        write_shard_manifest(&path, &swapped).unwrap();
        let err = read_shard_manifest(&path).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { format, .. } if format == "TSFMSHD1"),
            "{err}"
        );
    }

    #[test]
    fn arena_roundtrip_positioned_reads() {
        let dir = tmp("arena");
        let recs: Vec<TableRecord> =
            (0..5).map(|i| record(&format!("t{i}"), &[i, i + 1, i * 3])).collect();
        let payloads: Vec<Vec<u8>> = recs.iter().map(payload).collect();
        let bytes = build_arena(3, 9, &payloads);
        let path = dir.join(arena_file_name(3, 9));
        durable::commit_file(&path, &bytes).unwrap();
        let meta = ShardMeta {
            index: 3,
            generation: 9,
            entry_count: 5,
            total_rows: 0,
            total_cols: 0,
            arena_bytes: bytes.len() as u64,
        };
        let arena = ArenaIndex::open(&path, &meta).unwrap();
        assert_eq!(arena.slots.len(), 5);
        // Read out of order — positioned reads have no cursor.
        for i in [4usize, 0, 2, 1, 3] {
            let rec = arena.read_record(i).unwrap();
            assert_eq!(rec.table_id(), recs[i].table_id());
            assert_eq!(rec.content_hash, recs[i].content_hash);
            assert_eq!(rec.sketch.content_snapshot, recs[i].sketch.content_snapshot);
        }
        assert!(arena.read_payload(5).is_err());
    }

    #[test]
    fn arena_corruption_is_typed_never_a_panic() {
        let dir = tmp("arena_corrupt");
        let payloads: Vec<Vec<u8>> =
            (0..3).map(|i| payload(&record(&format!("t{i}"), &[i, 7 - i]))).collect();
        let bytes = build_arena(0, 1, &payloads);
        let path = dir.join(arena_file_name(0, 1));
        let meta = ShardMeta {
            index: 0,
            generation: 1,
            entry_count: 3,
            total_rows: 0,
            total_cols: 0,
            arena_bytes: bytes.len() as u64,
        };
        let assert_corrupt = |err: StoreError| {
            let StoreError::Corrupt { format, file, offset, .. } = &err else {
                panic!("want Corrupt, got {err}");
            };
            assert!(format == "TSFMARN1" || format == "TSFMSEG1", "{err}");
            assert!(file.is_some() && offset.is_some(), "must name shard file + offset: {err}");
        };

        // A flipped bit anywhere in header or offset table fails open();
        // a flipped payload bit fails the positioned read of that slot.
        let table_end = (ARENA_HEADER_LEN + 3 * ARENA_SLOT_LEN) as usize;
        for at in [0usize, 9, 13, 20, 30, 34, ARENA_HEADER_LEN as usize + 5, table_end - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            durable::commit_file(&path, &bad).unwrap();
            assert_corrupt(ArenaIndex::open(&path, &meta).unwrap_err());
        }
        let mut bad = bytes.clone();
        bad[table_end + 10] ^= 1; // inside payload 0
        durable::commit_file(&path, &bad).unwrap();
        let arena = ArenaIndex::open(&path, &meta).unwrap();
        assert_corrupt(arena.read_record(0).unwrap_err());
        assert!(arena.read_record(1).is_ok(), "other slots unaffected");

        // Truncation: both against the recorded size and within it.
        durable::commit_file(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert_corrupt(ArenaIndex::open(&path, &meta).unwrap_err());
        let short = ShardMeta { arena_bytes: meta.arena_bytes - 4, ..meta };
        assert_corrupt(ArenaIndex::open(&path, &short).unwrap_err());
    }

    #[test]
    fn sketch_cache_is_lru_bounded() {
        let mut c = SketchCache::new(2);
        let sk = |id: &str| Arc::new(record(id, &[1]).sketch);
        c.insert("a", sk("a"));
        c.insert("b", sk("b"));
        assert!(c.get("a").is_some(), "a refreshed");
        c.insert("c", sk("c"));
        assert!(c.get("b").is_none(), "b was least recent");
        assert!(c.get("a").is_some() && c.get("c").is_some());
        assert_eq!(c.map.len(), 2);
        assert_eq!(c.order.len(), 2);
    }
}
