//! The discovery wire format shared by the `tsfm query --json` output and
//! the `tsfm serve` JSONL-over-TCP protocol — hand-rolled JSON, no
//! dependencies.
//!
//! ## Protocol
//!
//! One request per line, one response line per request:
//!
//! ```text
//! → {"mode":"join","k":3,"csv":"city,pop\nVienna,1900000\n"}
//! → {"mode":"union","k":5,"id":"cities","explain":true}
//! ← {"query":"cities","mode":"union","corpus":812,"micros":412,"hits":[
//!      {"rank":1,"table":"city_areas","matching_columns":2,"score":0.013}]}
//! ← {"error":{"kind":"invalid_request","detail":"..."},"client":true}
//! ```
//!
//! Request fields: `mode` (required), exactly one of `csv` (inline query
//! table) or `id` (id of an ingested table), and optionally `k`,
//! `query_id`, `min_score`, `exclude_self`, `explain`, `columns`,
//! `profile` (per-stage timing breakdown in the response).
//! Unknown fields are rejected — typos must not silently change a query.
//!
//! Besides queries the protocol carries control verbs, dispatched on an
//! `op` field (see [`ServeCommand`]):
//!
//! ```text
//! → {"op":"stats"}
//! ← {"stats":{"uptime_ms":..,"tables":..,"requests":{...},"latency_us":{...}}}
//! → {"op":"metrics"}
//! ← {"metrics":"# HELP tsfm_serve_requests_total ...\n..."}
//! → {"op":"slowlog"}
//! ← {"slowlog":[{"query":"q1","mode":"join","micros":812,"unix_ms":...,
//!      "stages":[["features",90],["beam",600],...]}]}
//! ```
//!
//! A server at capacity answers new connections with a non-taxonomy
//! `unavailable` error ([`unavailable_json`]) before closing them.

use crate::engine::{QueryMode, TableHit};
use crate::error::{StoreError, StoreResult};
use crate::request::{DiscoveryRequest, DiscoveryResponse};

// ---- serialization --------------------------------------------------------

/// JSON string escaping per RFC 8259.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number; non-finite values (which JSON cannot carry) become null.
fn num_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One ranked hit as a JSON object — the single serializer behind both the
/// CLI's `--json` lines and the serve response's `hits` array.
pub fn hit_json(rank: usize, hit: &TableHit) -> String {
    format!(
        "{{\"rank\":{rank},\"table\":\"{}\",\"matching_columns\":{},\"score\":{}}}",
        escape_json(&hit.table_id),
        hit.matching_columns,
        num_json(hit.score)
    )
}

/// A whole response as one JSON line.
pub fn response_json(resp: &DiscoveryResponse) -> String {
    let hits: Vec<String> =
        resp.hits.iter().enumerate().map(|(i, h)| hit_json(i + 1, h)).collect();
    let mut out = format!(
        "{{\"query\":\"{}\",\"mode\":\"{}\",\"corpus\":{},\"micros\":{},\"hits\":[{}]",
        escape_json(&resp.query_id),
        resp.mode,
        resp.corpus_size,
        resp.elapsed_micros,
        hits.join(",")
    );
    if let Some(profile) = &resp.profile {
        let stages: Vec<String> = profile
            .iter()
            .map(|(stage, us)| format!("[\"{}\",{us}]", escape_json(stage)))
            .collect();
        out.push_str(&format!(",\"profile\":[{}]", stages.join(",")));
    }
    if let Some(explanations) = &resp.explanations {
        let ex: Vec<String> = explanations
            .iter()
            .map(|e| {
                let matches: Vec<String> = e
                    .matches
                    .iter()
                    .map(|m| {
                        format!(
                            "{{\"query_column\":\"{}\",\"corpus_column\":\"{}\",\"distance\":{}}}",
                            escape_json(&m.query_column),
                            escape_json(&m.corpus_column),
                            num_json(m.distance as f64)
                        )
                    })
                    .collect();
                format!(
                    "{{\"table\":\"{}\",\"matches\":[{}]}}",
                    escape_json(&e.table_id),
                    matches.join(",")
                )
            })
            .collect();
        out.push_str(&format!(",\"explanations\":[{}]", ex.join(",")));
    }
    out.push('}');
    out
}

/// An error as one JSON line, tagged with its taxonomy kind and whether
/// the fault is the client's (`InvalidRequest` et al.) or the server's.
/// Corruption attributed to a store file additionally carries `file` and
/// `offset` so an operator reading server logs can go straight to
/// `tsfm fsck` without re-deriving which file died.
pub fn error_json(e: &StoreError) -> String {
    let kind = match e {
        StoreError::Io(_) => "io",
        StoreError::Corrupt { .. } => "corrupt",
        StoreError::UnknownTable(_) => "unknown_table",
        StoreError::InvalidRequest(_) => "invalid_request",
        StoreError::EmptyIndex => "empty_index",
        StoreError::Internal(_) => "internal",
    };
    let mut attribution = String::new();
    if let StoreError::Corrupt { file, offset, .. } = e {
        if let Some(f) = file {
            attribution.push_str(&format!(",\"file\":\"{}\"", escape_json(f)));
        }
        if let Some(at) = offset {
            attribution.push_str(&format!(",\"offset\":{at}"));
        }
    }
    format!(
        "{{\"error\":{{\"kind\":\"{kind}\",\"detail\":\"{}\"{attribution}}},\"client\":{}}}",
        escape_json(&e.to_string()),
        e.is_client_error()
    )
}

/// The overload reply a server at capacity sends before closing a shed
/// connection. Deliberately outside the [`StoreError`] taxonomy: nothing
/// is wrong with the store or the request — the server simply refuses the
/// connection, and a client seeing `kind:"unavailable"` should back off
/// and retry.
pub fn unavailable_json(detail: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":\"unavailable\",\"detail\":\"{}\"}},\"client\":false}}",
        escape_json(detail)
    )
}

// ---- parsing --------------------------------------------------------------

/// A parsed JSON value (just enough JSON for the request protocol).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document (trailing garbage is an error).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require a valid low half.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("high surrogate not followed by a low one".into());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            hi
                        };
                        out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("bad escape \\{}", e as char)),
                }
            }
            // RFC 8259 §7: control characters (U+0000–U+001F) must be
            // escaped inside strings. Rejecting raw ones keeps the
            // serialize side (`escape_json`, which always emits `\uXXXX`)
            // and the parse side in exact agreement, and means a raw
            // newline can never smuggle a second JSONL frame into one
            // string.
            0x00..=0x1f => {
                return Err(format!(
                    "unescaped control character 0x{c:02x} in string (must be \\u-escaped)"
                ));
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let tail = &b[*pos - 1..];
                let ch_len = utf8_len(c)?;
                let chunk = tail.get(..ch_len).ok_or("truncated utf-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf-8")?);
                *pos += ch_len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err("bad utf-8 lead byte".into()),
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
    // RFC 8259 §7: exactly four hex digits. `from_str_radix` alone is too
    // lenient — it accepts a leading `+`, so `\u+fff` would silently
    // decode as U+0FFF.
    if !chunk.iter().all(u8::is_ascii_hexdigit) {
        return Err("bad \\u escape".into());
    }
    let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape")?;
    *pos += 4;
    u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---- the serve request ----------------------------------------------------

/// A parsed serve-protocol request: the validated [`DiscoveryRequest`]
/// plus where the query table comes from (inline CSV or a stored id).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    pub request: DiscoveryRequest,
    /// Inline query table as CSV text, if provided.
    pub csv: Option<String>,
    /// Id of an ingested table to use as the query, if provided.
    pub id: Option<String>,
    /// Id reported back for inline-CSV queries (default `"query"`).
    pub query_id: String,
}

/// One line of the serve protocol, dispatched: discovery queries are the
/// default shape; control verbs carry an `op` field instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeCommand {
    /// A discovery query (the `{"mode":...,"csv"|"id":...}` shape).
    Query(Box<ServeRequest>),
    /// `{"op":"stats"}` — operational counters and latency percentiles.
    Stats,
    /// `{"op":"metrics"}` — Prometheus text exposition, as one JSON string.
    Metrics,
    /// `{"op":"slowlog"}` — the slowest requests with stage breakdowns.
    Slowlog,
}

impl ServeCommand {
    /// Parse one request line into a command. Control verbs win when an
    /// `op` field is present; anything else is parsed as a discovery
    /// query. Every failure is [`StoreError::InvalidRequest`].
    pub fn parse_line(line: &str) -> StoreResult<ServeCommand> {
        let json = parse_request_json(line)?;
        if let Some(op) = json.get("op") {
            let op = op
                .as_str()
                .ok_or_else(|| StoreError::invalid("\"op\" must be a string"))?;
            let sole_field = |cmd: ServeCommand| {
                if let Json::Obj(fields) = &json {
                    if fields.len() != 1 {
                        return Err(StoreError::invalid(format!(
                            "\"op\":{op:?} takes no other fields"
                        )));
                    }
                }
                Ok(cmd)
            };
            return match op {
                "stats" => sole_field(ServeCommand::Stats),
                "metrics" => sole_field(ServeCommand::Metrics),
                "slowlog" => sole_field(ServeCommand::Slowlog),
                other => Err(StoreError::invalid(format!(
                    "unknown op {other:?} (known ops: metrics, slowlog, stats)"
                ))),
            };
        }
        ServeRequest::from_json(&json).map(|r| ServeCommand::Query(Box::new(r)))
    }
}

/// Parse a request line into a JSON object (shared by every verb).
fn parse_request_json(line: &str) -> StoreResult<Json> {
    let json = parse_json(line.trim())
        .map_err(|e| StoreError::invalid(format!("request is not valid JSON: {e}")))?;
    if !matches!(json, Json::Obj(_)) {
        return Err(StoreError::invalid("request must be a JSON object"));
    }
    Ok(json)
}

impl ServeRequest {
    /// Parse and validate one request line. Every failure is a
    /// [`StoreError::InvalidRequest`] so the serve loop answers it as a
    /// client error rather than dying.
    pub fn parse_line(line: &str) -> StoreResult<ServeRequest> {
        Self::from_json(&parse_request_json(line)?)
    }

    /// Validate an already-parsed request object.
    pub fn from_json(json: &Json) -> StoreResult<ServeRequest> {
        let Json::Obj(fields) = &json else {
            return Err(StoreError::invalid("request must be a JSON object"));
        };

        const KNOWN: [&str; 10] = [
            "mode", "k", "csv", "id", "query_id", "min_score", "exclude_self", "explain",
            "columns", "profile",
        ];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(StoreError::invalid(format!(
                    "unknown request field {key:?} (known fields: {})",
                    KNOWN.join(", ")
                )));
            }
        }

        let mode: QueryMode = json
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| StoreError::invalid("request needs a string \"mode\" field"))?
            .parse()?;
        let mut builder = DiscoveryRequest::builder(mode);
        if let Some(k) = json.get("k") {
            let k = k
                .as_f64()
                .filter(|k| k.fract() == 0.0 && *k >= 0.0 && *k <= u32::MAX as f64)
                .ok_or_else(|| StoreError::invalid("\"k\" must be a non-negative integer"))?;
            builder = builder.k(k as usize);
        }
        if let Some(ms) = json.get("min_score") {
            let ms = ms
                .as_f64()
                .ok_or_else(|| StoreError::invalid("\"min_score\" must be a number"))?;
            builder = builder.min_score(ms);
        }
        if let Some(ex) = json.get("exclude_self") {
            let ex = ex
                .as_bool()
                .ok_or_else(|| StoreError::invalid("\"exclude_self\" must be a boolean"))?;
            builder = builder.exclude_self(ex);
        }
        if let Some(ex) = json.get("explain") {
            let ex = ex
                .as_bool()
                .ok_or_else(|| StoreError::invalid("\"explain\" must be a boolean"))?;
            builder = builder.explain(ex);
        }
        if let Some(p) = json.get("profile") {
            let p = p
                .as_bool()
                .ok_or_else(|| StoreError::invalid("\"profile\" must be a boolean"))?;
            builder = builder.profile(p);
        }
        if let Some(cols) = json.get("columns") {
            let Json::Arr(items) = cols else {
                return Err(StoreError::invalid("\"columns\" must be an array of strings"));
            };
            let names: Option<Vec<&str>> = items.iter().map(Json::as_str).collect();
            let names =
                names.ok_or_else(|| StoreError::invalid("\"columns\" must be an array of strings"))?;
            builder = builder.columns(names);
        }
        let request = builder.build()?;

        let csv = json.get("csv").map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| StoreError::invalid("\"csv\" must be a string"))
        });
        let csv = csv.transpose()?;
        let id = json.get("id").map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| StoreError::invalid("\"id\" must be a string"))
        });
        let id = id.transpose()?;
        match (&csv, &id) {
            (Some(_), Some(_)) => {
                return Err(StoreError::invalid("give either \"csv\" or \"id\", not both"))
            }
            (None, None) => {
                return Err(StoreError::invalid(
                    "request needs a query table: inline \"csv\" or a stored \"id\"",
                ))
            }
            _ => {}
        }
        let query_id = match json.get("query_id") {
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| StoreError::invalid("\"query_id\" must be a string"))?,
            None => id.clone().unwrap_or_else(|| "query".to_string()),
        };
        Ok(ServeRequest { request, csv, id, query_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ColumnMatch, HitExplanation};

    #[test]
    fn escape_roundtrips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode 🦀";
        let line = format!("{{\"s\":\"{}\"}}", escape_json(nasty));
        let parsed = parse_json(&line).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some(nasty));
    }

    /// Every control character U+0000–U+001F must survive a serialize →
    /// parse round trip when escaped (table ids come straight from file
    /// stems and wire requests, so hostile names must not corrupt the
    /// JSONL protocol)…
    #[test]
    fn control_characters_roundtrip_escaped() {
        let every_control: String =
            (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        for id in [
            every_control.as_str(),
            "tab\there",
            "new\nline",
            "carriage\rreturn",
            "nul\u{0}byte",
            "esc\u{1b}[31mred",
            "back\u{8}space and \u{c}feed",
        ] {
            let escaped = escape_json(id);
            assert!(
                escaped.bytes().all(|b| b >= 0x20),
                "escape_json must never emit raw control bytes: {escaped:?}"
            );
            let line = format!("{{\"s\":\"{escaped}\"}}");
            let parsed = parse_json(&line).unwrap();
            assert_eq!(parsed.get("s").unwrap().as_str(), Some(id), "{id:?}");
        }
    }

    /// …and the full hit/response serializers inherit that: a hostile
    /// table id round-trips through `hit_json` / `response_json`.
    #[test]
    fn hostile_table_ids_roundtrip_through_response_json() {
        let hostile = "evil\u{0}\u{1f}\ttable\n\"name\\with\u{7}bell";
        let hit = TableHit { table_id: hostile.into(), matching_columns: 1, score: 0.5 };
        let parsed = parse_json(&hit_json(1, &hit)).expect("hit_json emits valid JSON");
        assert_eq!(parsed.get("table").unwrap().as_str(), Some(hostile));

        let resp = DiscoveryResponse {
            mode: QueryMode::Join,
            query_id: hostile.into(),
            corpus_size: 1,
            elapsed_micros: 1,
            hits: vec![hit],
            explanations: Some(vec![HitExplanation {
                table_id: hostile.into(),
                matches: vec![ColumnMatch {
                    query_column: hostile.into(),
                    corpus_column: hostile.into(),
                    distance: 0.25,
                }],
            }]),
            profile: None,
        };
        let v = parse_json(&response_json(&resp)).expect("response_json emits valid JSON");
        assert_eq!(v.get("query").unwrap().as_str(), Some(hostile));
        let Json::Arr(ex) = v.get("explanations").unwrap() else { panic!() };
        let Json::Arr(matches) = ex[0].get("matches").unwrap() else { panic!() };
        assert_eq!(matches[0].get("corpus_column").unwrap().as_str(), Some(hostile));
    }

    /// Raw (unescaped) control bytes inside strings are a parse error per
    /// RFC 8259 — previously they were silently accepted.
    #[test]
    fn raw_control_characters_rejected_by_parser() {
        for c in 0u8..0x20 {
            let line = format!("{{\"s\":\"a{}b\"}}", c as char);
            let err = parse_json(&line).unwrap_err();
            assert!(
                err.contains("control character"),
                "byte 0x{c:02x} must be rejected, got: {err}"
            );
        }
        // The same bytes escaped are fine.
        assert!(parse_json("{\"s\":\"a\\u0000b\"}").is_ok());
    }

    #[test]
    fn parser_handles_nesting_numbers_and_rejects_garbage() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        let Json::Arr(arr) = v.get("a").unwrap() else { panic!() };
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));

        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "nul", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }

        // Surrogate escapes: a valid pair decodes, broken ones error
        // instead of silently decoding a wrong codepoint.
        assert_eq!(parse_json(r#""\ud83e\udd80""#).unwrap().as_str(), Some("🦀"));
        for bad in [r#""\ud800""#, r#""\ud800\u0041""#, r#""\ud800x""#] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    /// RFC 8259 §7 surrogate handling: every astral-plane codepoint must
    /// survive both the raw-UTF-8 path and the `\uXXXX\uXXXX` escaped
    /// path, and broken surrogates must be rejected — not silently
    /// mis-decoded — whether they appear in a table id or a CSV payload.
    #[test]
    fn surrogate_pairs_roundtrip_raw_and_escaped() {
        // Codepoints straddling every interesting boundary: first/last
        // astral, musical symbol, emoji, BMP neighbours of the surrogate
        // gap, and a supplementary CJK ideograph.
        let cases = ['\u{10000}', '\u{10FFFF}', '\u{1D11E}', '🦀', '\u{D7FF}', '\u{E000}', '\u{2A6D6}'];
        for c in cases {
            let raw = format!("id-{c}-end");
            // Raw UTF-8 through the serializer (escape_json passes
            // non-control chars through unescaped, as RFC allows).
            let line = format!("{{\"s\":\"{}\"}}", escape_json(&raw));
            assert_eq!(parse_json(&line).unwrap().get("s").unwrap().as_str(), Some(raw.as_str()));

            // The same codepoint spelled as an escaped surrogate pair (or
            // a single \uXXXX for BMP chars) must decode identically.
            let escaped: String = raw
                .chars()
                .map(|c| {
                    let mut units = [0u16; 2];
                    c.encode_utf16(&mut units)
                        .iter()
                        .map(|u| format!("\\u{u:04x}"))
                        .collect::<String>()
                })
                .collect();
            let line = format!("{{\"s\":\"{escaped}\"}}");
            assert_eq!(
                parse_json(&line).unwrap().get("s").unwrap().as_str(),
                Some(raw.as_str()),
                "escaped form {escaped:?}"
            );
        }

        // Uppercase hex digits are as valid as lowercase.
        assert_eq!(parse_json("\"\\uD83E\\uDD80\"").unwrap().as_str(), Some("🦀"));

        // Broken surrogates: lone high, lone low, high+BMP, high+high,
        // low-first pair, truncated low half, and a `+`-smuggled escape
        // (from_str_radix would otherwise accept it).
        for bad in [
            r#""\ud834""#,
            r#""\udd1e""#,
            r#""\udc00""#,
            r#""\ud834A""#,
            r#""\ud834\ud834""#,
            r#""\udd1e\ud834""#,
            r#""\ud834\udd""#,
            r#""\u+fff""#,
            r#""\ud834\u+d1e""#,
        ] {
            assert!(parse_json(bad).is_err(), "{bad} must be rejected");
        }
    }

    /// Astral characters flow end to end through the serve protocol: a
    /// surrogate-pair-escaped CSV payload and query id parse into the
    /// right Rust strings, and hostile ids serialize back out parseably.
    #[test]
    fn surrogates_roundtrip_through_serve_requests_and_responses() {
        let line = r#"{"mode":"join","k":2,"query_id":"q🦀","csv":"name\n𝄞\n"}"#;
        let req = ServeRequest::parse_line(line).unwrap();
        assert_eq!(req.query_id, "q🦀");
        assert_eq!(req.csv.as_deref(), Some("name\n\u{1D11E}\n"));

        let hit = TableHit { table_id: "t-𝄞-🦀".into(), matching_columns: 1, score: 0.5 };
        let parsed = parse_json(&hit_json(1, &hit)).unwrap();
        assert_eq!(parsed.get("table").unwrap().as_str(), Some("t-𝄞-🦀"));
    }

    #[test]
    fn serve_command_dispatches_ops_and_queries() {
        assert_eq!(ServeCommand::parse_line(r#"{"op":"stats"}"#).unwrap(), ServeCommand::Stats);
        assert_eq!(
            ServeCommand::parse_line(r#"{"op":"metrics"}"#).unwrap(),
            ServeCommand::Metrics
        );
        assert_eq!(
            ServeCommand::parse_line(r#"{"op":"slowlog"}"#).unwrap(),
            ServeCommand::Slowlog
        );
        let cmd = ServeCommand::parse_line(r#"{"mode":"join","id":"cities"}"#).unwrap();
        let ServeCommand::Query(q) = cmd else { panic!("expected a query") };
        assert_eq!(q.id.as_deref(), Some("cities"));

        for (line, expect) in [
            (r#"{"op":"reboot"}"#, "unknown op"),
            (r#"{"op":42}"#, "must be a string"),
            (r#"{"op":"stats","k":3}"#, "no other fields"),
            (r#"{"op":"metrics","k":3}"#, "no other fields"),
            (r#"{"op":"slowlog","verbose":true}"#, "no other fields"),
        ] {
            let err = ServeCommand::parse_line(line).unwrap_err();
            assert!(matches!(err, StoreError::InvalidRequest(_)), "{line}");
            assert!(err.to_string().contains(expect), "{line} → {err}");
        }
        // The unknown-op error teaches the full verb list.
        let err = ServeCommand::parse_line(r#"{"op":"reboot"}"#).unwrap_err().to_string();
        for verb in ["metrics", "slowlog", "stats"] {
            assert!(err.contains(verb), "{err}");
        }
    }

    #[test]
    fn profile_field_parses_and_serializes() {
        let req =
            ServeRequest::parse_line(r#"{"mode":"join","id":"t","profile":true}"#).unwrap();
        assert!(req.request.profile());
        let req = ServeRequest::parse_line(r#"{"mode":"join","id":"t"}"#).unwrap();
        assert!(!req.request.profile());
        let err =
            ServeRequest::parse_line(r#"{"mode":"join","id":"t","profile":1}"#).unwrap_err();
        assert!(err.to_string().contains("\"profile\" must be a boolean"), "{err}");

        let resp = DiscoveryResponse {
            mode: QueryMode::Join,
            query_id: "q".into(),
            corpus_size: 1,
            elapsed_micros: 100,
            hits: vec![],
            explanations: None,
            profile: Some(vec![("beam".into(), 70), ("other".into(), 30)]),
        };
        let v = parse_json(&response_json(&resp)).expect("valid JSON");
        let Json::Arr(stages) = v.get("profile").unwrap() else { panic!() };
        assert_eq!(stages.len(), 2);
        let Json::Arr(first) = &stages[0] else { panic!() };
        assert_eq!(first[0].as_str(), Some("beam"));
        assert_eq!(first[1].as_f64(), Some(70.0));
    }

    #[test]
    fn unavailable_json_is_parseable_and_tagged() {
        let v = parse_json(&unavailable_json("server at connection capacity")).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("unavailable"));
        assert_eq!(v.get("client").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn serve_request_roundtrip_with_all_fields() {
        let line = r#"{"mode":"union","k":5,"csv":"a,b\n1,2\n","query_id":"q1",
            "min_score":2,"exclude_self":false,"explain":true,"columns":["a","b"]}"#
            .replace('\n', " ");
        let req = ServeRequest::parse_line(&line).unwrap();
        assert_eq!(req.request.mode(), QueryMode::Union);
        assert_eq!(req.request.k(), 5);
        assert_eq!(req.request.min_score(), Some(2.0));
        assert!(!req.request.exclude_self());
        assert!(req.request.explain());
        assert_eq!(req.request.columns(), Some(&["a".to_string(), "b".to_string()][..]));
        assert_eq!(req.csv.as_deref(), Some("a,b\n1,2\n"));
        assert_eq!(req.query_id, "q1");
    }

    #[test]
    fn serve_request_validation() {
        // Unknown field, missing mode, bad k, both/neither query source.
        let cases = [
            (r#"{"mode":"join","csv":"a\n1\n","bogus":1}"#, "unknown request field"),
            (r#"{"csv":"a\n1\n"}"#, "\"mode\""),
            (r#"{"mode":"fuzzy","csv":"a\n1\n"}"#, "valid modes"),
            (r#"{"mode":"join","k":0,"csv":"a\n1\n"}"#, "k must be >= 1"),
            (r#"{"mode":"join","k":1.5,"csv":"a\n1\n"}"#, "non-negative integer"),
            (r#"{"mode":"join","csv":"a\n1\n","id":"t"}"#, "not both"),
            (r#"{"mode":"join"}"#, "needs a query table"),
            ("not json", "not valid JSON"),
        ];
        for (line, expect) in cases {
            let err = ServeRequest::parse_line(line).unwrap_err();
            assert!(matches!(err, StoreError::InvalidRequest(_)), "{line} → {err}");
            assert!(err.to_string().contains(expect), "{line} → {err}");
        }
    }

    #[test]
    fn id_becomes_default_query_id() {
        let req = ServeRequest::parse_line(r#"{"mode":"join","id":"cities"}"#).unwrap();
        assert_eq!(req.id.as_deref(), Some("cities"));
        assert_eq!(req.query_id, "cities");
    }

    #[test]
    fn response_json_is_parseable_and_complete() {
        let resp = DiscoveryResponse {
            mode: QueryMode::Join,
            query_id: "q\"uote".into(),
            corpus_size: 42,
            elapsed_micros: 137,
            hits: vec![
                TableHit { table_id: "t1".into(), matching_columns: 2, score: 0.25 },
                TableHit { table_id: "t2".into(), matching_columns: 1, score: 1.5 },
            ],
            explanations: Some(vec![
                HitExplanation {
                    table_id: "t1".into(),
                    matches: vec![ColumnMatch {
                        query_column: "city".into(),
                        corpus_column: "town".into(),
                        distance: 0.125,
                    }],
                },
                HitExplanation { table_id: "t2".into(), matches: vec![] },
            ]),
            profile: None,
        };
        let line = response_json(&resp);
        let v = parse_json(&line).expect("serializer emits valid JSON");
        assert_eq!(v.get("query").unwrap().as_str(), Some("q\"uote"));
        assert_eq!(v.get("corpus").unwrap().as_f64(), Some(42.0));
        let Json::Arr(hits) = v.get("hits").unwrap() else { panic!() };
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].get("rank").unwrap().as_f64(), Some(1.0));
        assert_eq!(hits[0].get("table").unwrap().as_str(), Some("t1"));
        let Json::Arr(ex) = v.get("explanations").unwrap() else { panic!() };
        let Json::Arr(matches) = ex[0].get("matches").unwrap() else { panic!() };
        assert_eq!(matches[0].get("corpus_column").unwrap().as_str(), Some("town"));
    }

    #[test]
    fn error_json_tags_kind_and_client() {
        let line = error_json(&StoreError::invalid("k must be >= 1"));
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("invalid_request"));
        assert_eq!(v.get("client").unwrap().as_bool(), Some(true));

        let line = error_json(&StoreError::corrupt("TSFMSEG1", "boom"));
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("corrupt"));
        assert_eq!(v.get("client").unwrap().as_bool(), Some(false));
        assert!(v.get("error").unwrap().get("file").is_none(), "unattributed: no file field");

        // File-attributed corruption carries file + offset for operators.
        let stamped = StoreError::corrupt("TSFMSEG1", "checksum mismatch")
            .with_file(std::path::Path::new("/lake/segments/t1.seg"), 96);
        let v = parse_json(&error_json(&stamped)).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("file").unwrap().as_str(), Some("/lake/segments/t1.seg"));
        assert_eq!(err.get("offset").unwrap().as_f64(), Some(96.0));

        let line = error_json(&StoreError::internal("worker panicked"));
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("internal"));
        assert_eq!(v.get("client").unwrap().as_bool(), Some(false));
    }
}
