//! The crash-point sweeper: walk *every* fault-injection site the durable
//! layer exposes during a realistic mutation workload (ingest new tables,
//! update one, remove one, commit, rebuild the index), and assert that no
//! matter which single create/write/fsync/rename dies — cleanly or as a
//! torn write — the catalog reopens consistent:
//!
//! * `Catalog::open` yields either the pre-workload committed state or
//!   the post-commit state (the manifest rename is the single commit
//!   point — there is no third state), with every referenced segment
//!   readable and the index rebuildable; and
//! * once a commit has been acknowledged (`commit()` returned `Ok`), a
//!   later crash never loses it; and
//! * `tsfm fsck --repair` then clears any debris the crash left behind
//!   (orphaned segments from uncommitted adds, torn `.tmp` staging files)
//!   and the store verifies green.
//!
//! The fault plan in `durable::fault` is process-global, so the whole
//! sweep lives in ONE `#[test]` body — Rust's parallel test runner must
//! never interleave two armed plans.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tsfm_store::durable::fault::{self, FaultMode};
use tsfm_store::fsck::fsck;
use tsfm_store::{Catalog, StoreResult};
use tsfm_table::csv;
use tsfm_table::Table;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tsfm_crash_points_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn table(id: &str, rows: usize, salt: u64) -> Table {
    let text = (0..rows).fold("city,pop\n".to_string(), |mut acc, i| {
        acc.push_str(&format!("Wien{salt}_{i},{}\n", 1000 + salt * 100 + i as u64));
        acc
    });
    csv::table_from_csv(id, id, &text)
}

/// Committed, unfaulted baseline: tables `a` and `b` compacted into the
/// shard tier, index cache built. This state is acknowledged — every
/// crash below must preserve it until a later commit supersedes it.
fn build_baseline(dir: &Path) {
    let mut cat = Catalog::open(dir).expect("baseline open");
    cat.add_table(&table("a", 4, 1), 10).expect("baseline add a");
    cat.add_table(&table("b", 5, 2), 20).expect("baseline add b");
    cat.searcher().expect("baseline searcher");
    cat.compact().expect("baseline compact");
}

/// The faulted workload: add `c`, rewrite `b`, drop `a`, commit, rebuild
/// the index. The commit's churn (two loose writes shadowing / removing
/// two shard residents) trips the auto-compaction heuristic, so the sweep
/// also walks every fault site inside shard + arena rewriting. Returns
/// whether `commit()` was acknowledged before any fault fired. Every
/// error is swallowed — after the injected fault trips the plan poisons
/// all later durable ops, simulating a hard crash.
fn mutate(dir: &Path) -> bool {
    let mut acked = false;
    let _ = (|| -> StoreResult<()> {
        let mut cat = Catalog::open(dir)?;
        cat.add_table(&table("c", 6, 3), 30)?;
        cat.add_table(&table("b", 5, 9), 21)?; // changed content: update
        cat.remove("a")?;
        cat.commit()?;
        acked = true;
        cat.searcher()?; // rebuild + persist the index cache
        Ok(())
    })();
    acked
}

const BASELINE: &[&str] = &["a", "b"];
const COMMITTED: &[&str] = &["b", "c"];

/// Full consistency probe: open, list, load every record, rebuild a
/// searcher, and check the table set is one of the two legal manifest
/// states (`acked` pins it to the post-commit one). Any failure comes
/// back as a message for the sweep to report alongside its site number.
fn probe(dir: &Path, acked: bool) -> Result<(), String> {
    let mut cat = Catalog::open(dir).map_err(|e| format!("reopen failed: {e}"))?;
    let ids: BTreeSet<String> = cat
        .table_ids()
        .map_err(|e| format!("table_ids failed: {e}"))?
        .into_iter()
        .collect();
    let as_set = |ids: &[&str]| ids.iter().map(|s| (*s).to_string()).collect::<BTreeSet<_>>();
    let legal: &[&[&str]] = if acked { &[COMMITTED] } else { &[BASELINE, COMMITTED] };
    if !legal.iter().any(|want| ids == as_set(want)) {
        return Err(format!("reopened table set {ids:?} is not a committed state (acked={acked})"));
    }
    for id in &ids {
        cat.record(id).map_err(|e| format!("record {id}: {e}"))?;
    }
    let searcher = cat.searcher().map_err(|e| format!("searcher: {e}"))?;
    if searcher.len() != ids.len() {
        return Err(format!("searcher sees {} tables, manifest {}", searcher.len(), ids.len()));
    }
    Ok(())
}

#[test]
fn every_crash_point_reopens_consistent() {
    // Dry run: count the injection sites the workload passes through.
    let count_dir = tmp_dir("count");
    build_baseline(&count_dir);
    fault::arm_counting(&count_dir);
    let acked = mutate(&count_dir);
    let sites = fault::disarm();
    assert!(acked, "unfaulted dry run must commit");
    assert!(!fault::tripped(), "counting mode never trips");
    assert!(
        sites >= 10,
        "expected a rich site inventory (segment writes, fsyncs, manifest \
         and index commits); counted only {sites}"
    );
    probe(&count_dir, acked).expect("unfaulted workload must probe clean");
    let _ = std::fs::remove_dir_all(&count_dir);

    let mut swept = 0u64;
    let mut repairs = 0u64;
    for mode in [FaultMode::Fail, FaultMode::Torn] {
        for site in 0..sites {
            let dir = tmp_dir(&format!("{mode:?}_{site}"));
            build_baseline(&dir);
            fault::arm(&dir, site, mode);
            let acked = mutate(&dir);
            let was_tripped = fault::tripped(); // read before disarm clears the plan
            let seen = fault::disarm();
            assert!(
                was_tripped,
                "site {site} ({mode:?}) was never reached (saw {seen} of {sites} sites) — \
                 the workload must be deterministic"
            );

            // First, the store must reopen consistent — or be repairable
            // back to a consistent state that keeps everything acked.
            if let Err(why) = probe(&dir, acked) {
                let report = fsck(&dir, true).unwrap_or_else(|e| {
                    panic!("site {site} ({mode:?}): probe failed ({why}) and fsck errored: {e}")
                });
                assert!(
                    report.consistent_after(),
                    "site {site} ({mode:?}): probe failed ({why}) and repair did not \
                     restore consistency: {}",
                    report.to_json()
                );
                repairs += 1;
                probe(&dir, acked).unwrap_or_else(|e| {
                    panic!("site {site} ({mode:?}): inconsistent even after repair: {e}")
                });
            }

            // Then fsck must be able to sweep any crash debris (orphaned
            // uncommitted segments, torn .tmp files) and verify green.
            let report = fsck(&dir, true)
                .unwrap_or_else(|e| panic!("site {site} ({mode:?}): fsck errored: {e}"));
            assert!(
                report.consistent_after(),
                "site {site} ({mode:?}): unrepairable damage: {}",
                report.to_json()
            );
            let clean = fsck(&dir, false)
                .unwrap_or_else(|e| panic!("site {site} ({mode:?}): re-verify errored: {e}"));
            assert!(
                clean.healthy(),
                "site {site} ({mode:?}): store not green after repair: {}",
                clean.to_json()
            );
            // Repair never costs acknowledged data.
            probe(&dir, acked).unwrap_or_else(|e| {
                panic!("site {site} ({mode:?}): acked state lost after repair: {e}")
            });

            let _ = std::fs::remove_dir_all(&dir);
            swept += 1;
        }
    }
    // The sweep itself must have exercised the full matrix.
    assert_eq!(swept, 2 * sites, "site × mode matrix incomplete");
    println!(
        "crash-point sweep: {swept} injected crashes across {sites} sites, \
         {repairs} needed fsck --repair"
    );
}
