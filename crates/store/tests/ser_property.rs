//! Property tests for the store's binary frames (the `nn::io` lesson from
//! the `TSFMCKP1` work, extended to `TSFMHNS1` and `TSFMCAT1`): any
//! truncated or garbled frame must come back as a typed `Err` — never a
//! panic, and never an attacker-sized `with_capacity` allocation. The
//! catalog manifest additionally goes through `Catalog::open`, the path a
//! corrupt file on disk actually takes in production.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tsfm_store::ser::{read_hnsw, write_hnsw};
use tsfm_store::{Catalog, StoreError};
use tsfm_table::csv;
use tsfm_search::{Hnsw, HnswConfig, Metric};

/// A unique temp dir per call (cases run back to back within a process).
fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tsfm_ser_prop_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A small but structurally complete HNSW frame: multiple layers, real
/// neighbour lists.
fn hnsw_bytes(points: usize, seed: u64) -> Vec<u8> {
    let mut h = Hnsw::new(4, Metric::Cosine, HnswConfig::default());
    for i in 0..points as u32 {
        let v: Vec<f32> =
            (0..4).map(|j| ((i as u64 * 7 + j + seed) % 13) as f32 - 6.0).collect();
        h.add(&v);
    }
    let mut buf = Vec::new();
    write_hnsw(&mut buf, &h).expect("serialize");
    buf
}

/// A committed catalog manifest (`TSFMCAT1`) with a few real tables.
fn manifest_bytes(tables: usize) -> Vec<u8> {
    let dir = tmp_dir("make_manifest");
    let mut cat = Catalog::open(&dir).expect("open");
    for i in 0..tables {
        let t = csv::table_from_csv(
            &format!("t{i}"),
            &format!("t{i}"),
            &format!("city,pop\nVienna{i},{}\n", 100 + i),
        );
        cat.add_table(&t, i as u64 + 1).expect("add");
    }
    cat.commit().expect("commit");
    let path = cat.manifest_path();
    drop(cat);
    let bytes = std::fs::read(path).expect("read manifest");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// Re-open a catalog whose manifest has been replaced by `bytes`; the
/// result must be a typed error or a coherent catalog — never a panic.
fn open_with_manifest(bytes: &[u8]) -> Result<usize, StoreError> {
    let dir = tmp_dir("open");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("catalog.manifest"), bytes).unwrap();
    let res = Catalog::open(&dir).map(|c| c.len());
    let _ = std::fs::remove_dir_all(&dir);
    res
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every strict prefix of a valid `TSFMHNS1` frame is a typed
    /// `Corrupt` error — EOF mid-frame must not panic and must not be
    /// misread as a shorter valid graph.
    #[test]
    fn prop_truncated_hnsw_is_corrupt(points in 1usize..40, frac in 0.0f64..1.0) {
        let buf = hnsw_bytes(points, 11);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        match read_hnsw(&mut &buf[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMHNS1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated frame parsed"),
        }
    }

    /// A single flipped byte anywhere in a `TSFMHNS1` frame either still
    /// parses (the flip hit payload bits) or errors — never a panic, and
    /// length-field flips must be caught by the bounds checks instead of
    /// driving a giant allocation.
    #[test]
    fn prop_garbled_hnsw_never_panics(points in 1usize..40, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = hnsw_bytes(points, 23);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        // Ok or Err are both acceptable; surviving to a return value is
        // the property.
        let _ = read_hnsw(&mut buf.as_slice());
    }

    /// Huge length fields spliced into the element-count position must be
    /// rejected by the `MAX_*` bounds, not allocated.
    #[test]
    fn prop_hostile_hnsw_lengths_rejected(count in (1u64 << 32)..u64::MAX) {
        let mut buf = hnsw_bytes(8, 5);
        // Overwrite the first u64 after the 8-byte magic with a hostile
        // count; whatever field that is, a >4G element claim must die in
        // validation before any `with_capacity`.
        buf[8..16].copy_from_slice(&count.to_le_bytes());
        prop_assert!(read_hnsw(&mut buf.as_slice()).is_err());
    }

    /// Every strict prefix of a committed `TSFMCAT1` manifest makes
    /// `Catalog::open` fail with a typed error — never a panic.
    #[test]
    fn prop_truncated_manifest_is_typed_error(tables in 1usize..6, frac in 0.0f64..1.0) {
        let bytes = manifest_bytes(tables);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        match open_with_manifest(&bytes[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMCAT1"),
            Err(StoreError::Io(_)) => {} // zero-length file reads as io
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated manifest opened"),
        }
    }

    /// A garbled manifest byte either leaves the catalog readable or is a
    /// typed error; `Catalog::open` survives either way.
    #[test]
    fn prop_garbled_manifest_never_panics(tables in 1usize..6, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = manifest_bytes(tables);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = open_with_manifest(&bytes);
    }
}
