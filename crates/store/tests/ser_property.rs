//! Property tests for the store's binary frames (the `nn::io` lesson from
//! the `TSFMCKP1` work, extended to every store format: `TSFMHNS1`,
//! `TSFMCAT1`, `TSFMSEG1`, `TSFMEMB1`, and `TSFMIDX1`): any truncated or
//! garbled frame must come back as a typed `Err` — never a panic, and
//! never an attacker-sized `with_capacity` allocation. Since the v2
//! frames carry CRC32C, the garble properties are strict: *any* single
//! flipped bit anywhere in a frame is a typed `Corrupt` error, not a
//! silently different value. The catalog manifest additionally goes
//! through `Catalog::open`, and the index cache through
//! `catalog::read_index_cache` — the paths corrupt files on disk
//! actually take in production.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tsfm_store::ser::{
    read_embedding_matrix, read_hnsw, read_record, write_embedding_matrix, write_hnsw,
};
use tsfm_store::shard::{read_shard_manifest, ArenaIndex, ShardMeta};
use tsfm_store::{catalog, Catalog, StoreError};
use tsfm_table::csv;
use tsfm_search::{Hnsw, HnswConfig, Metric};

/// A unique temp dir per call (cases run back to back within a process).
fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tsfm_ser_prop_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A small but structurally complete HNSW frame: multiple layers, real
/// neighbour lists.
fn hnsw_bytes(points: usize, seed: u64) -> Vec<u8> {
    let mut h = Hnsw::new(4, Metric::Cosine, HnswConfig::default());
    for i in 0..points as u32 {
        let v: Vec<f32> =
            (0..4).map(|j| ((i as u64 * 7 + j + seed) % 13) as f32 - 6.0).collect();
        h.add(&v);
    }
    let mut buf = Vec::new();
    write_hnsw(&mut buf, &h).expect("serialize");
    buf
}

/// A committed catalog manifest (`TSFMCAT1`) with a few real tables.
fn manifest_bytes(tables: usize) -> Vec<u8> {
    let dir = tmp_dir("make_manifest");
    let mut cat = Catalog::open(&dir).expect("open");
    for i in 0..tables {
        let t = csv::table_from_csv(
            &format!("t{i}"),
            &format!("t{i}"),
            &format!("city,pop\nVienna{i},{}\n", 100 + i),
        );
        cat.add_table(&t, i as u64 + 1).expect("add");
    }
    cat.commit().expect("commit");
    let path = cat.manifest_path();
    drop(cat);
    let bytes = std::fs::read(path).expect("read manifest");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// A committed `TSFMSEG1` segment (with its nested `TSFMEMB1` frame) as
/// written by the real ingest path.
fn segment_bytes(rows: usize) -> Vec<u8> {
    let dir = tmp_dir("make_segment");
    let mut cat = Catalog::open(&dir).expect("open");
    let csv_text = (0..rows).fold("city,pop\n".to_string(), |mut acc, i| {
        acc.push_str(&format!("Graz{i},{}\n", 200 + i));
        acc
    });
    let t = csv::table_from_csv("seg", "seg", &csv_text);
    cat.add_table(&t, 77).expect("add");
    cat.commit().expect("commit");
    let seg = cat.entry("seg").expect("entry").segment.clone();
    let bytes = std::fs::read(dir.join("segments").join(seg)).expect("read segment");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// A committed `TSFMIDX1` index cache file, built by the real snapshot
/// path.
fn index_cache_bytes(tables: usize) -> Vec<u8> {
    let dir = tmp_dir("make_index");
    let mut cat = Catalog::open(&dir).expect("open");
    for i in 0..tables {
        let t = csv::table_from_csv(
            &format!("t{i}"),
            &format!("t{i}"),
            &format!("city,pop\nLinz{i},{}\n", 300 + i),
        );
        cat.add_table(&t, i as u64 + 1).expect("add");
    }
    cat.searcher().expect("searcher");
    cat.commit().expect("commit");
    let bytes = std::fs::read(dir.join("index.cache")).expect("read index cache");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// Run `catalog::read_index_cache` over raw bytes staged as a file (its
/// only entry point takes a path).
fn read_index_bytes(bytes: &[u8]) -> Result<u64, StoreError> {
    let dir = tmp_dir("read_index");
    let path = dir.join("index.cache");
    std::fs::write(&path, bytes).unwrap();
    let res = catalog::read_index_cache(&path).map(|(fp, ..)| fp);
    let _ = std::fs::remove_dir_all(&dir);
    res
}

/// A small `TSFMEMB1` embedding-matrix frame.
fn embedding_bytes(rows: usize, dim: usize, seed: u64) -> Vec<u8> {
    let matrix: Vec<Vec<f32>> = (0..rows)
        .map(|i| (0..dim).map(|j| ((i * dim + j) as u64 + seed) as f32 * 0.25).collect())
        .collect();
    let mut buf = Vec::new();
    write_embedding_matrix(&mut buf, &matrix, dim).expect("serialize");
    buf
}

/// A committed, compacted shard — `TSFMSHD1` manifest bytes, `TSFMARN1`
/// arena bytes, and the root-manifest metadata needed to open the arena
/// — built by the real compaction path.
fn sharded_bytes(tables: usize) -> (Vec<u8>, Vec<u8>, ShardMeta) {
    let dir = tmp_dir("make_shard");
    let mut cat = Catalog::open(&dir).expect("open");
    for i in 0..tables {
        let t = csv::table_from_csv(
            &format!("t{i}"),
            &format!("t{i}"),
            &format!("city,pop\nWels{i},{}\n", 400 + i),
        );
        cat.add_table(&t, i as u64 + 1).expect("add");
    }
    cat.compact().expect("compact");
    drop(cat);
    let mut shard_path = None;
    let mut arena_path = None;
    for e in std::fs::read_dir(dir.join("shards")).expect("shards dir") {
        let p = e.expect("dirent").path();
        match p.extension().and_then(|x| x.to_str()) {
            Some("shard") => shard_path = Some(p),
            Some("arena") => arena_path = Some(p),
            _ => {}
        }
    }
    let (shard_path, arena_path) = (shard_path.expect("shard file"), arena_path.expect("arena"));
    let m = read_shard_manifest(&shard_path).expect("valid shard manifest");
    let meta = ShardMeta {
        index: m.index,
        generation: m.generation,
        entry_count: m.entries.len() as u64,
        total_rows: 0,
        total_cols: 0,
        arena_bytes: std::fs::metadata(&arena_path).expect("arena meta").len(),
    };
    let shard = std::fs::read(shard_path).expect("read shard");
    let arena = std::fs::read(arena_path).expect("read arena");
    let _ = std::fs::remove_dir_all(&dir);
    (shard, arena, meta)
}

/// Run `read_shard_manifest` over raw bytes staged as a file (its entry
/// point takes a path, like the catalog open path that calls it).
fn read_shard_bytes(bytes: &[u8]) -> Result<usize, StoreError> {
    let dir = tmp_dir("read_shard");
    let path = dir.join("probe.shard");
    std::fs::write(&path, bytes).unwrap();
    let res = read_shard_manifest(&path).map(|m| m.entries.len());
    let _ = std::fs::remove_dir_all(&dir);
    res
}

/// Open staged arena bytes against `meta` and drag every slot through
/// both the raw positioned read and the record decode — the full lazy
/// read path a corrupt arena would hit in production.
fn probe_arena(bytes: &[u8], meta: &ShardMeta) -> Result<(), StoreError> {
    let dir = tmp_dir("read_arena");
    let path = dir.join(meta.arena_file());
    std::fs::write(&path, bytes).unwrap();
    let res = (|| {
        let arena = ArenaIndex::open(&path, meta)?;
        for slot in 0..arena.slots.len() {
            arena.read_payload(slot)?;
            arena.read_record(slot)?;
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    res
}

/// Re-open a catalog whose manifest has been replaced by `bytes`; the
/// result must be a typed error or a coherent catalog — never a panic.
fn open_with_manifest(bytes: &[u8]) -> Result<usize, StoreError> {
    let dir = tmp_dir("open");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("catalog.manifest"), bytes).unwrap();
    let res = Catalog::open(&dir).map(|c| c.len());
    let _ = std::fs::remove_dir_all(&dir);
    res
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every strict prefix of a valid `TSFMHNS1` frame is a typed
    /// `Corrupt` error — EOF mid-frame must not panic and must not be
    /// misread as a shorter valid graph.
    #[test]
    fn prop_truncated_hnsw_is_corrupt(points in 1usize..40, frac in 0.0f64..1.0) {
        let buf = hnsw_bytes(points, 11);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        match read_hnsw(&mut &buf[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMHNS1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated frame parsed"),
        }
    }

    /// Any single flipped bit anywhere in a `TSFMHNS1` frame is a typed
    /// `Corrupt` error — payload flips die on the CRC, header flips die
    /// in validation, and nothing panics or allocates attacker-sized
    /// buffers.
    #[test]
    fn prop_garbled_hnsw_is_detected(points in 1usize..40, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = hnsw_bytes(points, 23);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        match read_hnsw(&mut buf.as_slice()) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMHNS1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }

    /// Huge length fields spliced into the element-count position must be
    /// rejected by the `MAX_*` bounds, not allocated.
    #[test]
    fn prop_hostile_hnsw_lengths_rejected(count in (1u64 << 32)..u64::MAX) {
        let mut buf = hnsw_bytes(8, 5);
        // Overwrite the first u64 after the 8-byte magic with a hostile
        // count; whatever field that is, a >4G element claim must die in
        // validation before any `with_capacity`.
        buf[8..16].copy_from_slice(&count.to_le_bytes());
        prop_assert!(read_hnsw(&mut buf.as_slice()).is_err());
    }

    /// Every strict prefix of a committed `TSFMCAT1` manifest makes
    /// `Catalog::open` fail with a typed error — never a panic.
    #[test]
    fn prop_truncated_manifest_is_typed_error(tables in 1usize..6, frac in 0.0f64..1.0) {
        let bytes = manifest_bytes(tables);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        match open_with_manifest(&bytes[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMCAT1"),
            Err(StoreError::Io(_)) => {} // zero-length file reads as io
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated manifest opened"),
        }
    }

    /// Any single flipped bit in a committed `TSFMCAT1` manifest makes
    /// `Catalog::open` fail with a typed `Corrupt` error — a garbled
    /// manifest must never open as a silently different catalog.
    #[test]
    fn prop_garbled_manifest_is_detected(tables in 1usize..6, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = manifest_bytes(tables);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match open_with_manifest(&bytes) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMCAT1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }

    /// Every strict prefix of a real `TSFMSEG1` segment is a typed
    /// `Corrupt` error. Truncation inside the nested embedding frame may
    /// attribute to `TSFMEMB1`; either way it is corruption, not a panic.
    #[test]
    fn prop_truncated_segment_is_corrupt(rows in 1usize..30, frac in 0.0f64..1.0) {
        let buf = segment_bytes(rows);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        match read_record(&mut &buf[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => {
                prop_assert!(format == "TSFMSEG1" || format == "TSFMEMB1", "format {format}")
            }
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated segment parsed"),
        }
    }

    /// Any single flipped bit in a real `TSFMSEG1` segment is a typed
    /// `Corrupt` error — the outer CRC covers the whole record, nested
    /// embedding frame included.
    #[test]
    fn prop_garbled_segment_is_detected(rows in 1usize..30, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = segment_bytes(rows);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        match read_record(&mut buf.as_slice()) {
            Err(StoreError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }

    /// Every strict prefix of a `TSFMEMB1` embedding matrix is a typed
    /// `Corrupt` error.
    #[test]
    fn prop_truncated_embeddings_are_corrupt(rows in 1usize..20, dim in 1usize..8, frac in 0.0f64..1.0) {
        let buf = embedding_bytes(rows, dim, 3);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        match read_embedding_matrix(&mut &buf[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMEMB1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated matrix parsed"),
        }
    }

    /// Any single flipped bit in a `TSFMEMB1` frame is a typed `Corrupt`
    /// error — embedding floats are exactly the payload where a silent
    /// flip would skew every downstream distance, so the CRC must catch
    /// all of them.
    #[test]
    fn prop_garbled_embeddings_are_detected(rows in 1usize..20, dim in 1usize..8, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = embedding_bytes(rows, dim, 9);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        match read_embedding_matrix(&mut buf.as_slice()) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMEMB1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }
}

// The shard-layer properties compact a real catalog per case — keep the
// case count lower, like the index-cache block below.
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every strict prefix of a committed `TSFMSHD1` shard manifest is a
    /// typed `Corrupt` error naming the shard format — never a panic.
    #[test]
    fn prop_truncated_shard_manifest_is_corrupt(tables in 1usize..6, frac in 0.0f64..1.0) {
        let (shard, _, _) = sharded_bytes(tables);
        let cut = ((shard.len() - 1) as f64 * frac) as usize;
        match read_shard_bytes(&shard[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMSHD1"),
            Err(StoreError::Io(_)) => {} // zero-length file reads as io
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated shard manifest parsed"),
        }
    }

    /// Any single flipped bit in a committed `TSFMSHD1` shard manifest is
    /// a typed `Corrupt` error — the v2 frame CRC covers the whole body.
    #[test]
    fn prop_garbled_shard_manifest_is_detected(tables in 1usize..6, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let (mut shard, _, _) = sharded_bytes(tables);
        let pos = ((shard.len() - 1) as f64 * pos_frac) as usize;
        shard[pos] ^= 1 << bit;
        match read_shard_bytes(&shard) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMSHD1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }

    /// Every strict prefix of a `TSFMARN1` arena dies on the length check
    /// against the root manifest before any offset in it is trusted, as a
    /// typed `Corrupt` naming the shard file and an offset.
    #[test]
    fn prop_truncated_arena_is_corrupt(tables in 1usize..6, frac in 0.0f64..1.0) {
        let (_, arena, meta) = sharded_bytes(tables);
        let cut = ((arena.len() - 1) as f64 * frac) as usize;
        match probe_arena(&arena[..cut], &meta) {
            Err(StoreError::Corrupt { format, file, offset, .. }) => {
                prop_assert_eq!(format, "TSFMARN1");
                prop_assert!(file.is_some(), "corruption must name the arena file");
                prop_assert!(offset.is_some(), "corruption must name an offset");
            }
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(()) => prop_assert!(false, "truncated arena opened"),
        }
    }

    /// Any single flipped bit anywhere in a `TSFMARN1` arena — header,
    /// offset table, or payload region — surfaces as a typed `Corrupt`
    /// error with file + offset attribution somewhere on the lazy read
    /// path (open, positioned payload read, or record decode). Never a
    /// panic, never a silently different sketch.
    #[test]
    fn prop_garbled_arena_is_detected(tables in 1usize..6, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let (_, mut arena, meta) = sharded_bytes(tables);
        let pos = ((arena.len() - 1) as f64 * pos_frac) as usize;
        arena[pos] ^= 1 << bit;
        match probe_arena(&arena, &meta) {
            Err(StoreError::Corrupt { file, offset, .. }) => {
                prop_assert!(file.is_some(), "corruption must name the arena file");
                prop_assert!(offset.is_some(), "corruption must name an offset");
            }
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(()) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }
}

// The index-cache properties build a real searcher per case, which is
// slower than the pure-frame ones — keep their case count lower.
proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every strict prefix of a committed `TSFMIDX1` index cache is a
    /// typed `Corrupt` error through the real `read_index_cache` path.
    #[test]
    fn prop_truncated_index_cache_is_corrupt(tables in 1usize..4, frac in 0.0f64..1.0) {
        let buf = index_cache_bytes(tables);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        match read_index_bytes(&buf[..cut]) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMIDX1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated index cache parsed"),
        }
    }

    /// Any single flipped bit in a committed `TSFMIDX1` index cache is a
    /// typed `Corrupt` error — a garbled ANN graph must be rebuilt, not
    /// served.
    #[test]
    fn prop_garbled_index_cache_is_detected(tables in 1usize..4, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = index_cache_bytes(tables);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        match read_index_bytes(&buf) {
            Err(StoreError::Corrupt { format, .. }) => prop_assert_eq!(format, "TSFMIDX1"),
            Err(other) => prop_assert!(false, "non-Corrupt error: {other:?}"),
            Ok(_) => prop_assert!(false, "flipped bit at {pos} (bit {bit}) went undetected"),
        }
    }
}
