//! Column data types and the paper's type-inference rule.

use crate::value::{is_null_token, parse_float, parse_int};
use crate::{date, Value};

/// Column data type. The integer codes (string=1, int=2, float=3, date=4)
/// match Fig. 1 of the paper and are used directly as column-type embedding
/// indices (0 is reserved for non-column tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    Str,
    Int,
    Float,
    Date,
}

impl ColType {
    /// Embedding index per Fig. 1.
    pub fn embedding_id(self) -> usize {
        match self {
            ColType::Str => 1,
            ColType::Int => 2,
            ColType::Float => 3,
            ColType::Date => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ColType::Str => "string",
            ColType::Int => "integer",
            ColType::Float => "float",
            ColType::Date => "date",
        }
    }

    pub fn is_numeric(self) -> bool {
        matches!(self, ColType::Int | ColType::Float | ColType::Date)
    }
}

/// Infer a column type from raw text cells using the paper's rule
/// (§III-B.4): make a best-case effort to parse the **first 10
/// non-null values** as dates, integers, or floats, defaulting to string.
///
/// A candidate type survives only if *every* probed value parses as it;
/// mixed columns therefore fall back in the order date → int → float → str,
/// which the paper acknowledges "can yield poor results" for mixed types but
/// always assigns at least one type.
pub fn infer_type_from_text<'a, I: IntoIterator<Item = &'a str>>(cells: I) -> ColType {
    let mut saw_any = false;
    let (mut all_date, mut all_int, mut all_float) = (true, true, true);
    for raw in cells.into_iter().filter(|c| !is_null_token(c)).take(10) {
        saw_any = true;
        if all_date && date::parse_date(raw).is_none() {
            all_date = false;
        }
        if all_int && parse_int(raw).is_none() {
            all_int = false;
        }
        if all_float && parse_float(raw).is_none() {
            all_float = false;
        }
        if !(all_date || all_int || all_float) {
            return ColType::Str;
        }
    }
    if !saw_any {
        return ColType::Str;
    }
    if all_date {
        ColType::Date
    } else if all_int {
        ColType::Int
    } else if all_float {
        ColType::Float
    } else {
        ColType::Str
    }
}

/// Infer the type of already-typed values (first 10 non-null), used when a
/// table is built programmatically rather than parsed from text.
pub fn infer_type_from_values(values: &[Value]) -> ColType {
    let mut counts = [0usize; 4]; // str, int, float, date
    for v in values.iter().filter(|v| !v.is_null()).take(10) {
        match v {
            Value::Str(_) => counts[0] += 1,
            Value::Int(_) => counts[1] += 1,
            Value::Float(_) => counts[2] += 1,
            Value::Date(_) => counts[3] += 1,
            Value::Null => unreachable!(),
        }
    }
    if counts[0] > 0 {
        return ColType::Str; // any string makes the column string-typed
    }
    if counts[3] > 0 && counts[1] == 0 && counts[2] == 0 {
        return ColType::Date;
    }
    if counts[2] > 0 {
        return ColType::Float;
    }
    if counts[1] > 0 {
        return ColType::Int;
    }
    ColType::Str
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_from_text() {
        assert_eq!(infer_type_from_text(["1", "2", "3"]), ColType::Int);
        assert_eq!(infer_type_from_text(["1.5", "2", "3"]), ColType::Float);
        assert_eq!(infer_type_from_text(["2021-01-01", "1999-12-31"]), ColType::Date);
        assert_eq!(infer_type_from_text(["a", "b"]), ColType::Str);
        assert_eq!(infer_type_from_text(["1", "a"]), ColType::Str);
        assert_eq!(infer_type_from_text([]), ColType::Str);
        assert_eq!(infer_type_from_text(["", "null", "7"]), ColType::Int, "nulls skipped");
    }

    #[test]
    fn only_first_ten_probed() {
        // 10 ints then a string: rule only sees the ints.
        let mut cells: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        cells.push("oops".to_string());
        assert_eq!(infer_type_from_text(cells.iter().map(std::string::String::as_str)), ColType::Int);
    }

    #[test]
    fn infers_from_values() {
        assert_eq!(infer_type_from_values(&[Value::Int(1), Value::Int(2)]), ColType::Int);
        assert_eq!(infer_type_from_values(&[Value::Int(1), Value::Float(0.5)]), ColType::Float);
        assert_eq!(infer_type_from_values(&[Value::Date(0)]), ColType::Date);
        assert_eq!(
            infer_type_from_values(&[Value::Null, Value::Str("x".into())]),
            ColType::Str
        );
        assert_eq!(infer_type_from_values(&[]), ColType::Str);
    }

    #[test]
    fn embedding_ids_match_fig1() {
        assert_eq!(ColType::Str.embedding_id(), 1);
        assert_eq!(ColType::Int.embedding_id(), 2);
        assert_eq!(ColType::Float.embedding_id(), 3);
        assert_eq!(ColType::Date.embedding_id(), 4);
    }
}
