//! Dependency-free CSV reader/writer (RFC 4180 subset: quoted fields,
//! doubled-quote escapes, CR/LF/CRLF record separators).
//!
//! Reading a CSV produces a [`Table`]: the first record is the header, types
//! are inferred per column with the paper's first-ten-values rule, and cells
//! are parsed as the inferred type (falling back to strings on mismatch).

use crate::coltype::infer_type_from_text;
use crate::table::{Column, Table};
use crate::value::parse_as;
use std::io::{self, BufRead, Write};

/// Parse CSV text into raw string records.
pub fn parse_records(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    records
}

/// Read a table from CSV text. The first record is the header row.
pub fn table_from_csv(id: &str, name: &str, text: &str) -> Table {
    let mut records = parse_records(text);
    let mut table = Table::new(id, name);
    if records.is_empty() {
        return table;
    }
    let header = records.remove(0);
    let ncols = header.len();
    for (ci, col_name) in header.into_iter().enumerate() {
        let cells = records.iter().map(|r| r.get(ci).map_or("", String::as_str));
        let ty = infer_type_from_text(cells.clone());
        let values = cells.map(|c| parse_as(c, ty)).collect();
        table.push_column(Column::with_type(col_name, ty, values));
    }
    debug_assert_eq!(table.num_cols(), ncols);
    table
}

/// Read a table from any `BufRead` source.
pub fn table_from_reader<R: BufRead>(id: &str, name: &str, mut r: R) -> io::Result<Table> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    Ok(table_from_csv(id, name, &text))
}

fn needs_quoting(s: &str) -> bool {
    s.contains([',', '"', '\n', '\r'])
}

/// Serialize a table to CSV text.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    for (i, c) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_field(&mut out, &c.name);
    }
    out.push('\n');
    for r in 0..table.num_rows() {
        for (ci, _) in table.columns.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            push_field(&mut out, &table.cell(r, ci).render());
        }
        out.push('\n');
    }
    out
}

fn push_field(out: &mut String, s: &str) {
    if needs_quoting(s) {
        out.push('"');
        for ch in s.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Write a table as CSV to an `io::Write` sink (buffered writes recommended).
pub fn write_csv<W: Write>(table: &Table, w: &mut W) -> io::Result<()> {
    w.write_all(table_to_csv(table).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColType, Value};

    #[test]
    fn parses_simple() {
        let recs = parse_records("a,b\n1,2\n3,4\n");
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn parses_quotes_and_newlines() {
        let recs = parse_records("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"multi\nline\",2\n");
        assert_eq!(recs[1], vec!["x,y", "he said \"hi\""]);
        assert_eq!(recs[2], vec!["multi\nline", "2"]);
    }

    #[test]
    fn handles_crlf_and_missing_final_newline() {
        let recs = parse_records("a,b\r\n1,2");
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn empty_input() {
        assert!(parse_records("").is_empty());
    }

    #[test]
    fn typed_table() {
        let t = table_from_csv(
            "t",
            "t",
            "city,pop,rate,since\nvienna,1900000,0.5,2001-01-01\ngraz,290000,0.25,1999-06-30\n",
        );
        assert_eq!(t.column(0).ty, ColType::Str);
        assert_eq!(t.column(1).ty, ColType::Int);
        assert_eq!(t.column(2).ty, ColType::Float);
        assert_eq!(t.column(3).ty, ColType::Date);
        assert_eq!(t.cell(0, 1), &Value::Int(1900000));
        assert!(matches!(t.cell(1, 3), Value::Date(_)));
    }

    #[test]
    fn nulls_parse_as_null() {
        let t = table_from_csv("t", "t", "x\n1\n\n3\nnan\n");
        assert_eq!(t.column(0).ty, ColType::Int);
        assert_eq!(t.column(0).null_count(), 2);
    }

    #[test]
    fn roundtrip() {
        let src = "name,note\nann,\"likes, commas\"\nbob,\"quote \"\" inside\"\n";
        let t = table_from_csv("t", "t", src);
        let out = table_to_csv(&t);
        let t2 = table_from_csv("t", "t", &out);
        assert_eq!(t2.cell(0, 1), &Value::Str("likes, commas".into()));
        assert_eq!(t2.cell(1, 1), &Value::Str("quote \" inside".into()));
    }

    #[test]
    fn write_csv_matches_to_csv() {
        let t = table_from_csv("t", "t", "a,b\n1,x\n");
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), table_to_csv(&t));
    }

    #[test]
    fn ragged_records_tolerated() {
        let t = table_from_csv("t", "t", "a,b\n1\n2,3\n");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), &Value::Null);
    }
}
