//! Minimal date handling: parse common CSV date formats to Unix timestamps
//! and format them back. No external crates; civil-calendar arithmetic uses
//! Howard Hinnant's `days_from_civil` algorithm.

/// Days from 1970-01-01 for a proleptic Gregorian civil date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn valid_date(y: i64, m: u32, d: u32) -> bool {
    if !(1..=12).contains(&m) || d == 0 || !(1..=9999).contains(&y) {
        return false;
    }
    let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    let dim = match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if leap {
                29
            } else {
                28
            }
        }
        _ => unreachable!(),
    };
    d <= dim
}

fn ts(y: i64, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Option<i64> {
    if !valid_date(y, m, d) || hh > 23 || mm > 59 || ss > 60 {
        return None;
    }
    Some(days_from_civil(y, m, d) * 86400 + (hh * 3600 + mm * 60 + ss) as i64)
}

/// Parse a date (optionally with time) into a Unix timestamp.
///
/// Accepted layouts, matching what CKAN/Socrata-style open-data CSVs use:
/// `YYYY-MM-DD`, `YYYY/MM/DD`, `DD/MM/YYYY`, `MM/DD/YYYY` (when unambiguous
/// we prefer day-first only if the first field exceeds 12), `YYYY-MM-DD
/// HH:MM[:SS]`, and the `T`-separated ISO form (an optional trailing `Z` is
/// allowed).
pub fn parse_date(s: &str) -> Option<i64> {
    let t = s.trim();
    if t.is_empty() || t.len() > 32 {
        return None;
    }
    let t = t.strip_suffix('Z').unwrap_or(t);
    let (date_part, time_part) = match t.split_once(['T', ' ']) {
        Some((d, tm)) => (d, Some(tm)),
        None => (t, None),
    };
    let (hh, mm, ss) = match time_part {
        None => (0, 0, 0),
        Some(tp) => {
            let mut it = tp.split(':');
            let h: u32 = it.next()?.parse().ok()?;
            let m: u32 = it.next()?.parse().ok()?;
            let s: u32 = match it.next() {
                None => 0,
                // Tolerate fractional seconds by truncating.
                Some(sec) => sec.split('.').next()?.parse().ok()?,
            };
            if it.next().is_some() {
                return None;
            }
            (h, m, s)
        }
    };

    let fields: Vec<&str> = if date_part.contains('-') {
        date_part.split('-').collect()
    } else if date_part.contains('/') {
        date_part.split('/').collect()
    } else {
        return None;
    };
    if fields.len() != 3 || fields.iter().any(|f| f.is_empty() || f.len() > 4) {
        return None;
    }
    let nums: Vec<i64> = fields
        .iter()
        .map(|f| f.parse::<i64>().ok())
        .collect::<Option<_>>()?;

    if fields[0].len() == 4 {
        // Year first: YYYY-MM-DD.
        ts(nums[0], nums[1] as u32, nums[2] as u32, hh, mm, ss)
    } else if fields[2].len() == 4 {
        // Year last. Disambiguate D/M vs M/D by range; prefer month-first.
        let (a, b, y) = (nums[0], nums[1], nums[2]);
        if (1..=12).contains(&a) {
            ts(y, a as u32, b as u32, hh, mm, ss)
        } else {
            ts(y, b as u32, a as u32, hh, mm, ss)
        }
    } else {
        None
    }
}

/// Format a timestamp as `YYYY-MM-DD` (date-only) or `YYYY-MM-DD HH:MM:SS`.
pub fn format_timestamp(ts: i64) -> String {
    let mut s = String::new();
    format_timestamp_into(ts, &mut s);
    s
}

/// Append [`format_timestamp`]'s rendering to `out` — byte-identical,
/// without allocating or (for in-range dates) calling into `core::fmt`.
/// Date cells are rendered millions of times during a lake ingest.
pub fn format_timestamp_into(ts: i64, out: &mut String) {
    let days = ts.div_euclid(86400);
    let secs = ts.rem_euclid(86400);
    let (y, m, d) = civil_from_days(days);
    if (0..=9999).contains(&y) {
        push_padded(out, y as u64, 4);
        out.push('-');
        push_padded(out, m as u64, 2);
        out.push('-');
        push_padded(out, d as u64, 2);
    } else {
        // Out-of-range years (never produced by the parser, but reachable
        // through the Value API): `{:04}` pads the sign too, so defer to
        // the original formatting.
        out.push_str(&format!("{:04}-{:02}-{:02}", y, m, d));
    }
    if secs != 0 {
        out.push(' ');
        push_padded(out, (secs / 3600) as u64, 2);
        out.push(':');
        push_padded(out, ((secs % 3600) / 60) as u64, 2);
        out.push(':');
        push_padded(out, (secs % 60) as u64, 2);
    }
}

/// Append `v` zero-padded to at least `width` digits (`{:0width$}` for
/// non-negative values).
fn push_padded(out: &mut String, v: u64, width: usize) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut u = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (u % 10) as u8;
        u /= 10;
        if u == 0 {
            break;
        }
    }
    while buf.len() - i < width {
        i -= 1;
        buf[i] = b'0';
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(parse_date("1970-01-01"), Some(0));
    }

    #[test]
    fn known_dates() {
        // 2000-03-01 is day 11017 (verified against `date -d`).
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        assert_eq!(parse_date("2024-02-29"), Some(days_from_civil(2024, 2, 29) * 86400));
        assert_eq!(parse_date("2023-02-29"), None, "not a leap year");
    }

    #[test]
    fn civil_roundtrip() {
        for z in [-1000, -1, 0, 1, 365, 11017, 20000, 800000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn formats() {
        let want = days_from_civil(2021, 7, 4) * 86400;
        assert_eq!(parse_date("2021-07-04"), Some(want));
        assert_eq!(parse_date("2021/07/04"), Some(want));
        assert_eq!(parse_date("07/04/2021"), Some(want), "month-first preferred");
        assert_eq!(parse_date("25/12/2021"), Some(days_from_civil(2021, 12, 25) * 86400));
        assert_eq!(parse_date("2021-07-04T12:30:00"), Some(want + 12 * 3600 + 30 * 60));
        assert_eq!(parse_date("2021-07-04 12:30"), Some(want + 12 * 3600 + 30 * 60));
        assert_eq!(parse_date("2021-07-04T12:30:00.123Z"), Some(want + 12 * 3600 + 30 * 60));
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "hello", "12", "2021-13-01", "2021-00-10", "1/2", "1/2/3/4", "99999-01-01"] {
            assert_eq!(parse_date(s), None, "{s:?}");
        }
    }

    #[test]
    fn format_roundtrip() {
        for &t in &[0i64, 86399, 86400, 1234567890, -86400] {
            let s = format_timestamp(t);
            assert_eq!(parse_date(&s), Some(t), "{s}");
        }
    }

    /// The digit-pushing fast path must be byte-identical to the
    /// `format!` reference for every shape: date-only, date+time, year
    /// 0 edge, and out-of-range years (negative / five-digit) that take
    /// the fallback.
    #[test]
    fn format_timestamp_into_matches_format_macro() {
        let reference = |ts: i64| -> String {
            let days = ts.div_euclid(86400);
            let secs = ts.rem_euclid(86400);
            let (y, m, d) = civil_from_days(days);
            if secs == 0 {
                format!("{:04}-{:02}-{:02}", y, m, d)
            } else {
                format!(
                    "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
                    y, m, d, secs / 3600, (secs % 3600) / 60, secs % 60
                )
            }
        };
        let mut cases: Vec<i64> = vec![
            0, 1, 59, 3600, 86399, 86400, -1, -86400, 1234567890,
            days_from_civil(9999, 12, 31) * 86400 + 86399,
            days_from_civil(10000, 1, 1) * 86400,          // five-digit year fallback
            days_from_civil(-44, 3, 15) * 86400 + 7 * 3600, // negative year fallback
            days_from_civil(1, 1, 1) * 86400,
        ];
        cases.extend((0..500).map(|i| i * 7_919_773 - 1_000_000_000));
        for ts in cases {
            assert_eq!(format_timestamp(ts), reference(ts), "ts={ts}");
        }
    }
}
