//! Stable, seedable 64-bit hashing.
//!
//! Sketches must be reproducible across processes and platforms, so we avoid
//! `std`'s hashers (whose output is explicitly unspecified across releases)
//! and use FNV-1a with a splitmix64 finalizer. Quality is sufficient for
//! MinHash/SimHash estimation and the finalizer removes FNV's weak low bits.

/// splitmix64 mixing step; also usable as a tiny PRNG for seed derivation.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, finalized with splitmix64.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// Stable hash of a string.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Stable hash of a string under a seed (for independent hash families).
#[inline]
pub fn hash_str_seeded(s: &str, seed: u64) -> u64 {
    splitmix64(hash_str(s) ^ splitmix64(seed))
}

/// A tiny deterministic generator for deriving parameter streams
/// (MinHash permutation coefficients, LSH seeds, ...).
#[derive(Debug, Clone)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    pub fn new(seed: u64) -> Self {
        Self { state: splitmix64(seed ^ 0x51ed_2701_89ab_cdef) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Next odd u64 (useful as a multiplicative hash coefficient).
    pub fn next_odd(&mut self) -> u64 {
        self.next_u64() | 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash_str("austria vienna"), hash_str("austria vienna"));
        assert_ne!(hash_str("a"), hash_str("b"));
        assert_ne!(hash_str_seeded("a", 1), hash_str_seeded("a", 2));
    }

    #[test]
    fn avalanche_spread() {
        // Hashes of near-identical strings should differ in many bits.
        let a = hash_str("value_000");
        let b = hash_str("value_001");
        assert!((a ^ b).count_ones() >= 16);
    }

    #[test]
    fn seed_stream_distinct() {
        let mut s = SeedStream::new(7);
        let vals: HashSet<u64> = (0..1000).map(|_| s.next_u64()).collect();
        assert_eq!(vals.len(), 1000);
        let mut s2 = SeedStream::new(7);
        let first = s2.next_u64();
        let mut s3 = SeedStream::new(7);
        assert_eq!(first, s3.next_u64(), "same seed, same stream");
    }

    #[test]
    fn low_bits_usable() {
        // Bucketing by low bits should be roughly uniform.
        let mut buckets = [0usize; 16];
        for i in 0..16000 {
            buckets[(hash_str(&format!("k{i}")) & 15) as usize] += 1;
        }
        for &c in &buckets {
            assert!((700..1300).contains(&c), "bucket skew: {buckets:?}");
        }
    }
}
