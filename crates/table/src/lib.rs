//! Table substrate for TabSketchFM.
//!
//! This crate holds the in-memory table model that every other crate builds
//! on: typed cell values, the first-ten-values column-type inference rule
//! from the paper (§III-B.4), date parsing to timestamps, a dependency-free
//! CSV reader/writer, and a stable 64-bit hash used by all sketches so that
//! results are reproducible across runs and platforms.

#![forbid(unsafe_code)]

pub mod coltype;
pub mod csv;
pub mod date;
pub mod hash;
pub mod table;
pub mod value;

pub use coltype::ColType;
pub use table::{Column, Table};
pub use value::Value;
