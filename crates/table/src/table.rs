//! The in-memory table model: named, typed columns plus table metadata.

use crate::coltype::{infer_type_from_values, ColType};
use crate::Value;
use rand::seq::SliceRandom;
use rand::Rng;

/// A single column: a header, an inferred (or declared) type, and values.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
    pub values: Vec<Value>,
}

impl Column {
    /// Build a column, inferring its type from the first 10 non-null values.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        let ty = infer_type_from_values(&values);
        Self { name: name.into(), ty, values }
    }

    pub fn with_type(name: impl Into<String>, ty: ColType, values: Vec<Value>) -> Self {
        Self { name: name.into(), ty, values }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Non-null values rendered as strings (the MinHash element set).
    pub fn rendered_values(&self) -> impl Iterator<Item = String> + '_ {
        self.values.iter().filter(|v| !v.is_null()).map(super::value::Value::render)
    }

    /// Numeric view of the column (ints, floats, date timestamps).
    pub fn numeric_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().filter_map(super::value::Value::as_f64)
    }

    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }
}

/// A table: identifier, human metadata, and columns.
///
/// `description` corresponds to the paper's "table meta-data"; it is the
/// text that receives the content-snapshot MinHash embedding.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub id: String,
    pub name: String,
    pub description: String,
    pub columns: Vec<Column>,
}

impl Table {
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        let name = name.into();
        Self { id: id.into(), name, description: String::new(), columns: Vec::new() }
    }

    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    pub fn push_column(&mut self, col: Column) {
        self.columns.push(col);
    }

    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows: the longest column (ragged tables are tolerated;
    /// short columns read as `Null` beyond their end).
    pub fn num_rows(&self) -> usize {
        self.columns.iter().map(Column::len).max().unwrap_or(0)
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    pub fn cell(&self, row: usize, col: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.columns[col].values.get(row).unwrap_or(&NULL)
    }

    /// One row rendered as a single `|`-delimited string — the element fed
    /// into the content-snapshot MinHash (§III-A: "convert each row into a
    /// string and generate a MinHash signature from the set of rows").
    pub fn row_string(&self, row: usize) -> String {
        let mut s = String::new();
        self.row_string_into(row, &mut s);
        s
    }

    /// Append the row string to `out` — byte-identical to
    /// [`Table::row_string`], reusing the caller's buffer (the
    /// content-snapshot hot path renders every row of a lake through one
    /// buffer).
    pub fn row_string_into(&self, row: usize, out: &mut String) {
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            if let Some(v) = col.values.get(row) {
                v.render_into(out);
            }
        }
    }

    /// Return a copy with columns permuted (data-augmentation in §III-C and
    /// order-invariance probes in §IV-C3).
    pub fn shuffled_columns<R: Rng>(&self, rng: &mut R, new_id: impl Into<String>) -> Table {
        let mut t = self.clone();
        t.id = new_id.into();
        t.columns.shuffle(rng);
        t
    }

    /// Return a copy with rows permuted consistently across columns.
    pub fn shuffled_rows<R: Rng>(&self, rng: &mut R, new_id: impl Into<String>) -> Table {
        let n = self.num_rows();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let mut t = self.clone();
        t.id = new_id.into();
        for (ci, col) in self.columns.iter().enumerate() {
            for (new_r, &old_r) in perm.iter().enumerate() {
                t.columns[ci].values[new_r] =
                    col.values.get(old_r).cloned().unwrap_or(Value::Null);
            }
        }
        t
    }

    /// Project a subset of columns (by index), preserving order of `keep`.
    pub fn project(&self, keep: &[usize], new_id: impl Into<String>) -> Table {
        let mut t = Table::new(new_id, self.name.clone());
        t.description = self.description.clone();
        for &i in keep {
            t.columns.push(self.columns[i].clone());
        }
        t
    }

    /// Take a subset of rows (by index), preserving order of `keep`.
    pub fn take_rows(&self, keep: &[usize], new_id: impl Into<String>) -> Table {
        let mut t = self.clone();
        t.id = new_id.into();
        for col in &mut t.columns {
            let src = std::mem::take(&mut col.values);
            col.values = keep
                .iter()
                .map(|&r| src.get(r).cloned().unwrap_or(Value::Null))
                .collect();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Table {
        let mut t = Table::new("t1", "people").with_description("a table about people");
        t.push_column(Column::new(
            "name",
            vec![Value::Str("ann".into()), Value::Str("bob".into()), Value::Str("cy".into())],
        ));
        t.push_column(Column::new("age", vec![Value::Int(34), Value::Int(51), Value::Null]));
        t
    }

    #[test]
    fn dims_and_cells() {
        let t = sample();
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(0, 1), &Value::Int(34));
        assert_eq!(t.cell(2, 1), &Value::Null);
        assert_eq!(t.column(0).ty, ColType::Str);
        assert_eq!(t.column(1).ty, ColType::Int);
    }

    #[test]
    fn row_strings() {
        let t = sample();
        assert_eq!(t.row_string(0), "ann|34");
        assert_eq!(t.row_string(2), "cy|");
    }

    #[test]
    fn ragged_rows_read_null() {
        let mut t = sample();
        t.columns[1].values.pop();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(2, 1), &Value::Null);
    }

    #[test]
    fn column_shuffle_preserves_content() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let s = t.shuffled_columns(&mut rng, "t1s");
        assert_eq!(s.num_cols(), t.num_cols());
        for col in &t.columns {
            let found = s.column_by_name(&col.name).expect("column survives shuffle");
            assert_eq!(found.values, col.values);
        }
    }

    #[test]
    fn row_shuffle_keeps_rows_aligned() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(7);
        let s = t.shuffled_rows(&mut rng, "t1r");
        let mut orig: Vec<String> = (0..t.num_rows()).map(|r| t.row_string(r)).collect();
        let mut shuf: Vec<String> = (0..s.num_rows()).map(|r| s.row_string(r)).collect();
        orig.sort();
        shuf.sort();
        assert_eq!(orig, shuf, "rows permuted, never torn");
    }

    #[test]
    fn project_and_take_rows() {
        let t = sample();
        let p = t.project(&[1], "p");
        assert_eq!(p.num_cols(), 1);
        assert_eq!(p.column(0).name, "age");
        let r = t.take_rows(&[2, 0], "r");
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.cell(0, 0), &Value::Str("cy".into()));
        assert_eq!(r.cell(1, 0), &Value::Str("ann".into()));
    }

    #[test]
    fn numeric_and_null_accessors() {
        let t = sample();
        let ages: Vec<f64> = t.column(1).numeric_values().collect();
        assert_eq!(ages, vec![34.0, 51.0]);
        assert_eq!(t.column(1).null_count(), 1);
        let names: Vec<String> = t.column(0).rendered_values().collect();
        assert_eq!(names, vec!["ann", "bob", "cy"]);
    }
}
