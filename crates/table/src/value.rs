//! Typed cell values and lexical parsing.

use crate::date;

/// A single table cell.
///
/// Dates are stored as Unix timestamps (seconds) so they can be treated as
/// numeric columns, as the paper does ("when possible, we convert date
/// columns to timestamps and treat them as numeric columns", §III-A).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Str(String),
    Int(i64),
    Float(f64),
    Date(i64),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by numerical sketches. Strings have no numeric
    /// value; dates expose their timestamp.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(ts) => Some(*ts as f64),
            _ => None,
        }
    }

    /// Canonical string rendering, used for MinHash sets and CSV output.
    /// `Null` renders as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Date(ts) => date::format_timestamp(*ts),
        }
    }

    /// Append the canonical rendering to `out` — byte-identical to
    /// [`Value::render`], but without allocating a `String` per cell or
    /// going through `core::fmt` for the common cases. This is the
    /// sketching hot path: callers clear and reuse one buffer across
    /// millions of cells.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => {}
            Value::Str(s) => out.push_str(s),
            Value::Int(i) => push_i64(out, *i),
            Value::Float(f) => {
                if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
                    // `format!("{:.1}")` of an integral float: the integer
                    // digits and ".0". |f| < 1e15 < 2^53, so the i64 cast
                    // is exact; -0.0 keeps its sign like `{:.1}` does.
                    if *f == 0.0 && f.is_sign_negative() {
                        out.push('-');
                    }
                    push_i64(out, *f as i64);
                    out.push_str(".0");
                } else {
                    let _ = write!(out, "{}", f);
                }
            }
            Value::Date(ts) => date::format_timestamp_into(*ts, out),
        }
    }
}

/// Append `v`'s decimal digits — identical bytes to `i64::to_string`,
/// without the `core::fmt` machinery.
pub(crate) fn push_i64(out: &mut String, v: i64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut u = v.unsigned_abs();
    loop {
        i -= 1;
        buf[i] = b'0' + (u % 10) as u8;
        u /= 10;
        if u == 0 {
            break;
        }
    }
    if v < 0 {
        i -= 1;
        buf[i] = b'-';
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Render a float without scientific notation surprises for integral values.
fn format_float(f: f64) -> String {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        format!("{}", f)
    }
}

/// Strings treated as missing values when parsing raw text cells.
pub fn is_null_token(s: &str) -> bool {
    let t = s.trim();
    t.is_empty()
        || t.eq_ignore_ascii_case("null")
        || t.eq_ignore_ascii_case("nan")
        || t.eq_ignore_ascii_case("na")
        || t.eq_ignore_ascii_case("n/a")
        || t == "-"
}

/// Parse a raw text cell as an integer (rejecting floats).
pub fn parse_int(s: &str) -> Option<i64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    // Permit thousands separators, e.g. "1,234,567".
    if t.contains(',') {
        let collapsed: String = t.chars().filter(|c| *c != ',').collect();
        return parse_int(&collapsed);
    }
    t.parse::<i64>().ok()
}

/// Parse a raw text cell as a float.
pub fn parse_float(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    if t.contains(',') && !t.contains('.') {
        // Could be "1,234" style; strip separators conservatively.
        let collapsed: String = t.chars().filter(|c| *c != ',').collect();
        return collapsed.parse::<f64>().ok();
    }
    let v = t.parse::<f64>().ok()?;
    v.is_finite().then_some(v)
}

/// Parse a raw text cell with a *known* target type, falling back to
/// `Str` (never discarding data) when the lexical form does not match.
pub fn parse_as(s: &str, ty: crate::ColType) -> Value {
    use crate::ColType;
    if is_null_token(s) {
        return Value::Null;
    }
    match ty {
        ColType::Int => parse_int(s).map_or_else(|| Value::Str(s.trim().to_string()), Value::Int),
        ColType::Float => parse_float(s).map_or_else(|| Value::Str(s.trim().to_string()), Value::Float),
        ColType::Date => date::parse_date(s).map_or_else(|| Value::Str(s.trim().to_string()), Value::Date),
        ColType::Str => Value::Str(s.trim().to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_parsing() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int(" -7 "), Some(-7));
        assert_eq!(parse_int("1,234,567"), Some(1234567));
        assert_eq!(parse_int("3.5"), None);
        assert_eq!(parse_int("abc"), None);
        assert_eq!(parse_int(""), None);
    }

    #[test]
    fn float_parsing() {
        assert_eq!(parse_float("3.5"), Some(3.5));
        assert_eq!(parse_float("-0.25"), Some(-0.25));
        assert_eq!(parse_float("1e3"), Some(1000.0));
        assert_eq!(parse_float("1,234"), Some(1234.0));
        assert_eq!(parse_float("inf"), None, "non-finite rejected");
        assert_eq!(parse_float("x"), None);
    }

    #[test]
    fn null_tokens() {
        for t in ["", "  ", "null", "NaN", "N/A", "na", "-"] {
            assert!(is_null_token(t), "{t:?} should be null");
        }
        assert!(!is_null_token("0"));
        assert!(!is_null_token("none at all"));
    }

    #[test]
    fn render_roundtrip() {
        assert_eq!(Value::Int(5).render(), "5");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Str("hi".into()).render(), "hi");
    }

    /// `render_into` (manual digit paths included) must be byte-identical
    /// to `render` (the `format!`-based reference) for every value shape.
    #[test]
    fn render_into_matches_render() {
        let mut values = vec![
            Value::Null,
            Value::Str("hello world".into()),
            Value::Str(String::new()),
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(2.0),
            Value::Float(-123456.0),
            Value::Float(2.5),
            Value::Float(-0.125),
            Value::Float(1e20),
            Value::Float(-1e300),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NAN),
            Value::Float(999_999_999_999_999.0), // just under the 1e15 cutoff
            Value::Float(1e15),                  // at the cutoff: `{}` path
            Value::Date(0),
            Value::Date(86399),
            Value::Date(-86400),
            Value::Date(1234567890),
        ];
        values.extend((-50..50).map(|i| Value::Int(i * 7_777_777_777)));
        values.extend((-50..50).map(|i| Value::Float(i as f64 * 333.0)));
        for v in values {
            let mut buf = String::from("prefix-"); // must append, not clobber
            v.render_into(&mut buf);
            assert_eq!(buf, format!("prefix-{}", v.render()), "{v:?}");
        }
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Date(100).as_f64(), Some(100.0));
        assert_eq!(Value::Str("3".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
