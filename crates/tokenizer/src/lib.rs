//! A WordPiece-style tokenizer built from scratch.
//!
//! TabSketchFM's token stream is table metadata plus column names, so the
//! vocabulary is tiny compared to natural language. We therefore build the
//! vocabulary directly from the training corpus (instead of shipping BERT's
//! 30k-entry WordPiece list): frequent whole words become pieces, and all
//! observed single characters become both initial and `##`-continuation
//! pieces, so any word can be tokenized without falling back to `[UNK]`.
//! Encoding is greedy longest-match-first, exactly like HuggingFace's
//! WordPiece.

#![forbid(unsafe_code)]

pub mod vocab;

pub use vocab::{Vocab, VocabBuilder};

/// Special token ids, fixed by construction.
pub const PAD: u32 = 0;
pub const UNK: u32 = 1;
pub const CLS: u32 = 2;
pub const SEP: u32 = 3;
pub const MASK: u32 = 4;
pub const NUM_SPECIALS: u32 = 5;

/// Pre-tokenize text into lowercase word tokens (alphanumeric runs;
/// digits kept). Mirrors [`tsfm_sketch::words_of`] so column values and
/// column names share lexical space.
pub fn pre_tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_tokenize_basic() {
        assert_eq!(pre_tokenize("Reference Area"), vec!["reference", "area"]);
        assert_eq!(pre_tokenize("per-capita GDP (2021)"), vec!["per", "capita", "gdp", "2021"]);
        assert!(pre_tokenize("--").is_empty());
    }

    #[test]
    fn special_ids_are_stable() {
        assert_eq!((PAD, UNK, CLS, SEP, MASK), (0, 1, 2, 3, 4));
    }
}
