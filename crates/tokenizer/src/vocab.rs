//! Vocabulary construction and WordPiece encoding.

use crate::{pre_tokenize, CLS, MASK, NUM_SPECIALS, PAD, SEP, UNK};
use std::collections::HashMap;

pub const SPECIAL_TOKENS: [&str; NUM_SPECIALS as usize] =
    ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"];

/// An immutable vocabulary with WordPiece encode/decode.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
    max_piece_len: usize,
}

impl Vocab {
    fn from_pieces(pieces: Vec<String>) -> Self {
        let mut id_to_token: Vec<String> =
            SPECIAL_TOKENS.iter().map(|s| (*s).to_string()).collect();
        id_to_token.extend(pieces);
        let mut token_to_id = HashMap::with_capacity(id_to_token.len());
        for (i, t) in id_to_token.iter().enumerate() {
            let prev = token_to_id.insert(t.clone(), i as u32);
            assert!(prev.is_none(), "duplicate piece {t:?}");
        }
        let max_piece_len = id_to_token.iter().map(std::string::String::len).max().unwrap_or(1);
        Vocab { token_to_id, id_to_token, max_piece_len }
    }

    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    pub fn is_empty(&self) -> bool {
        false // specials always present
    }

    pub fn id_of(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    pub fn token_of(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Encode one pre-tokenized word with greedy longest-match WordPiece.
    /// Returns `[UNK]` alone if the word cannot be covered (i.e. it
    /// contains a character never seen at build time).
    pub fn encode_word(&self, word: &str) -> Vec<u32> {
        let mut out = Vec::new();
        let bytes = word.as_bytes();
        let mut start = 0;
        while start < bytes.len() {
            let prefix = if start == 0 { "" } else { "##" };
            let mut end = bytes.len().min(start + self.max_piece_len);
            let mut matched = None;
            while end > start {
                // Candidate must fall on a char boundary.
                if word.is_char_boundary(end) {
                    let cand = format!("{prefix}{}", &word[start..end]);
                    if let Some(id) = self.id_of(&cand) {
                        matched = Some((id, end));
                        break;
                    }
                }
                end -= 1;
            }
            match matched {
                Some((id, e)) => {
                    out.push(id);
                    start = e;
                }
                None => return vec![UNK],
            }
        }
        if out.is_empty() {
            vec![UNK]
        } else {
            out
        }
    }

    /// Encode free text (pre-tokenization included).
    pub fn encode_text(&self, text: &str) -> Vec<u32> {
        pre_tokenize(text).iter().flat_map(|w| self.encode_word(w)).collect()
    }

    /// Decode ids to a readable string (continuation pieces joined).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut s = String::new();
        for &id in ids {
            let t = self.token_of(id);
            if let Some(cont) = t.strip_prefix("##") {
                s.push_str(cont);
            } else {
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(t);
            }
        }
        s
    }

    /// Serialize as one piece per line (specials first).
    pub fn to_lines(&self) -> String {
        self.id_to_token.join("\n")
    }

    /// Reload a vocabulary serialized by [`Vocab::to_lines`].
    pub fn from_lines(text: &str) -> Vocab {
        let pieces: Vec<String> = text
            .lines()
            .skip(NUM_SPECIALS as usize)
            .map(std::string::ToString::to_string)
            .collect();
        let v = Vocab::from_pieces(pieces);
        debug_assert_eq!(&v.id_to_token[..NUM_SPECIALS as usize], &SPECIAL_TOKENS);
        v
    }

    pub fn pad(&self) -> u32 {
        PAD
    }
    pub fn unk(&self) -> u32 {
        UNK
    }
    pub fn cls(&self) -> u32 {
        CLS
    }
    pub fn sep(&self) -> u32 {
        SEP
    }
    pub fn mask(&self) -> u32 {
        MASK
    }
}

/// Streaming vocabulary builder: feed raw text, then [`VocabBuilder::build`].
#[derive(Debug, Default)]
pub struct VocabBuilder {
    word_freq: HashMap<String, usize>,
}

impl VocabBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_text(&mut self, text: &str) {
        for w in pre_tokenize(text) {
            *self.word_freq.entry(w).or_insert(0) += 1;
        }
    }

    /// Build the vocabulary: all single characters observed (as initial and
    /// `##` continuation pieces) plus the most frequent whole words with
    /// `freq >= min_freq`, capped at `max_words`.
    pub fn build(&self, min_freq: usize, max_words: usize) -> Vocab {
        let mut chars: Vec<char> = self
            .word_freq
            .keys()
            .flat_map(|w| w.chars())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        chars.sort_unstable();

        let mut words: Vec<(&String, &usize)> =
            self.word_freq.iter().filter(|(w, f)| **f >= min_freq && w.len() > 1).collect();
        // Deterministic order: frequency desc, then lexicographic.
        words.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        words.truncate(max_words);

        let mut pieces: Vec<String> = Vec::with_capacity(2 * chars.len() + words.len());
        for &c in &chars {
            pieces.push(c.to_string());
        }
        for &c in &chars {
            pieces.push(format!("##{c}"));
        }
        let single_chars: std::collections::HashSet<String> =
            chars.iter().map(std::string::ToString::to_string).collect();
        for (w, _) in words {
            if !single_chars.contains(w.as_str()) {
                pieces.push(w.clone());
            }
        }
        Vocab::from_pieces(pieces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_vocab() -> Vocab {
        let mut b = VocabBuilder::new();
        for _ in 0..3 {
            b.add_text("reference area age assessed value street city population");
        }
        b.add_text("rare");
        b.build(2, 1000)
    }

    #[test]
    fn whole_words_become_single_tokens() {
        let v = sample_vocab();
        assert_eq!(v.encode_word("reference").len(), 1);
        assert_eq!(v.decode(&v.encode_word("reference")), "reference");
    }

    #[test]
    fn rare_words_fall_back_to_chars() {
        let v = sample_vocab();
        let ids = v.encode_word("rare"); // below min_freq
        assert!(ids.len() > 1, "char fallback expected");
        assert_eq!(v.decode(&ids), "rare", "char pieces reassemble the word");
    }

    #[test]
    fn unseen_chars_give_unk() {
        let v = sample_vocab();
        assert_eq!(v.encode_word("日本"), vec![UNK]);
    }

    #[test]
    fn greedy_longest_match() {
        let mut b = VocabBuilder::new();
        for _ in 0..5 {
            b.add_text("street streets");
        }
        b.add_text("abcdefghijklmnopqrstuvwxyz"); // full char coverage
        let v = b.build(2, 100);
        // "streets" is its own piece — greedy must take it whole.
        assert_eq!(v.encode_word("streets").len(), 1);
        // "streetcar": greedy takes "street" then chars.
        let ids = v.encode_word("streetcar");
        assert_eq!(v.token_of(ids[0]), "street");
        assert_eq!(v.decode(&ids), "streetcar");
    }

    #[test]
    fn encode_text_pretokenizes() {
        let v = sample_vocab();
        let ids = v.encode_text("Reference Area");
        assert_eq!(v.decode(&ids), "reference area");
    }

    #[test]
    fn serialization_roundtrip() {
        let v = sample_vocab();
        let text = v.to_lines();
        let v2 = Vocab::from_lines(&text);
        assert_eq!(v.len(), v2.len());
        assert_eq!(v.encode_text("city street age"), v2.encode_text("city street age"));
    }

    #[test]
    fn specials_present() {
        let v = sample_vocab();
        assert_eq!(v.id_of("[CLS]"), Some(CLS));
        assert_eq!(v.id_of("[MASK]"), Some(MASK));
        assert_eq!(v.token_of(PAD), "[PAD]");
    }

    #[test]
    fn deterministic_build() {
        let a = sample_vocab();
        let b = sample_vocab();
        assert_eq!(a.to_lines(), b.to_lines());
    }

    proptest! {
        /// Encoding never panics and ASCII-alphanumeric words always
        /// reassemble exactly (every char is in the vocab).
        #[test]
        fn prop_ascii_roundtrip(word in "[a-z0-9]{1,12}") {
            let mut b = VocabBuilder::new();
            b.add_text("abcdefghijklmnopqrstuvwxyz 0123456789");
            let v = b.build(1, 100);
            let ids = v.encode_word(&word);
            prop_assert_eq!(v.decode(&ids), word);
        }

        /// Arbitrary unicode input never panics.
        #[test]
        fn prop_no_panic(text in ".{0,60}") {
            let v = sample_vocab();
            let _ = v.encode_text(&text);
        }
    }
}
