//! Joinable-table search over a data lake: exact overlap (Josie-style),
//! MinHash LSH Forest, and embedding search — the §IV-C1 scenario where
//! surface value overlap is NOT enough (the "Aleppo" homograph trap).
//!
//! `cargo run --release --example join_search`

use tabsketchfm::lake::{gen_join_search, JoinSearchConfig, World, WorldConfig};
use tabsketchfm::search::{evaluate_search, JosieIndex, LshForest};
use tabsketchfm::sketch::MinHasher;
use tabsketchfm::table::hash::hash_str;

fn main() {
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(&world, &JoinSearchConfig::default());
    let keys = bench.key_column.as_ref().unwrap();
    println!(
        "lake: {} tables; {} queries; gold = sensibly joinable (same entity domain, J > 0.5)",
        bench.tables.len(),
        bench.queries.len()
    );

    // Index every column's value set.
    let mut josie = JosieIndex::new();
    let mh = MinHasher::new(64, 0);
    let mut forest = LshForest::new(8, 8, 64, 1);
    let mut owner = Vec::new();
    for (ti, t) in bench.tables.iter().enumerate() {
        for c in &t.columns {
            let hashes: Vec<u64> = c.rendered_values().map(|v| hash_str(&v)).collect();
            josie.add(hashes.iter().copied());
            forest.add(mh.signature_hashed(hashes.iter().copied()));
            owner.push(ti);
        }
    }

    let k = 10;
    let run = |use_exact: bool| -> Vec<Vec<usize>> {
        bench
            .queries
            .iter()
            .map(|&q| {
                let hashes: Vec<u64> = bench.tables[q].columns[keys[q]]
                    .rendered_values()
                    .map(|v| hash_str(&v))
                    .collect();
                let col_hits: Vec<usize> = if use_exact {
                    josie
                        .top_k_overlap(hashes.iter().copied(), k * 4)
                        .into_iter()
                        .map(|(c, _)| c)
                        .collect()
                } else {
                    forest
                        .search(&mh.signature_hashed(hashes.iter().copied()), k * 4)
                        .into_iter()
                        .map(|(c, _)| c)
                        .collect()
                };
                let mut seen = std::collections::BTreeSet::new();
                let mut out = Vec::new();
                for c in col_hits {
                    let t = owner[c];
                    if t != q && seen.insert(t) {
                        out.push(t);
                        if out.len() == k {
                            break;
                        }
                    }
                }
                out
            })
            .collect()
    };

    for (name, exact) in [("Josie (exact overlap)", true), ("LSH Forest (MinHash)", false)] {
        let retrieved = run(exact);
        let s = evaluate_search(&retrieved, &bench.gold, k);
        println!(
            "{name:<24} mean F1 {:.1}%  P@{k} {:.2}  R@{k} {:.2}",
            100.0 * s.mean_f1,
            s.mean_precision,
            s.mean_recall
        );
    }
    println!("\nFor the full eight-system comparison (Table V), run:");
    println!("  cargo run --release -p tsfm_bench --bin exp_table5");
}
