//! Durable end-to-end discovery: generate a small synthetic lake, write it
//! out as real CSV files, ingest them into a persistent catalog, *close
//! everything*, then reopen cold and serve join/union/subset queries —
//! the production-shaped path where index build cost is paid once.
//!
//! `cargo run --release --example persistent_search`

use std::fs;
use tabsketchfm::lake::{gen_join_search, JoinSearchConfig, World, WorldConfig};
use tabsketchfm::store::{Catalog, QueryMode};
use tabsketchfm::table::csv;

fn main() -> std::io::Result<()> {
    let root = std::env::temp_dir().join(format!("tsfm_persistent_search_{}", std::process::id()));
    let csv_dir = root.join("lake");
    let cat_dir = root.join("catalog");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&csv_dir)?;

    // 1. A synthetic lake, written as plain CSV files on disk.
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(
        &world,
        &JoinSearchConfig {
            groups: 4,
            tables_per_group: 5,
            low_overlap_per_group: 1,
            distractors: 8,
            seed: 5,
        },
    );
    for t in &bench.tables {
        fs::write(csv_dir.join(format!("{}.csv", t.id)), csv::table_to_csv(t))?;
    }
    // One table that is a literal row-subset of the first query table, so
    // the subset workload has a true answer.
    let query_id = bench.tables[bench.queries[0]].id.clone();
    let base = csv::table_to_csv(&bench.tables[bench.queries[0]]);
    let half: Vec<&str> = base.lines().take(1 + (base.lines().count() - 1) / 2).collect();
    fs::write(csv_dir.join("row_subset.csv"), half.join("\n") + "\n")?;
    println!("wrote {} CSV files to {}", bench.tables.len() + 1, csv_dir.display());

    // 2. Ingest into a catalog, then drop it — nothing survives in memory.
    {
        let mut cat = Catalog::open(&cat_dir)?;
        let report = cat.ingest_dir(&csv_dir)?;
        println!(
            "ingest: {} added, {} unchanged ({} sketched)",
            report.added,
            report.unchanged,
            report.sketched()
        );
        // Re-ingesting is free: every content hash matches.
        let again = cat.ingest_dir(&csv_dir)?;
        println!("re-ingest: {} sketched (incremental no-op)", again.sketched());
    }

    // 3. Reopen cold — as a fresh process would — and query.
    let mut cat = Catalog::open(&cat_dir)?;
    println!("\nreopened catalog: {} tables, index cached: {}", cat.len(), cat.stats().index_cached);

    let text = fs::read_to_string(csv_dir.join(format!("{query_id}.csv")))?;
    let query = csv::table_from_csv(&query_id, &query_id, &text);
    for mode in [QueryMode::Join, QueryMode::Union, QueryMode::Subset] {
        let hits = cat.query(mode, &query, 5)?;
        println!("\ntop-5 {} candidates for {query_id}:", mode.name());
        for (i, h) in hits.iter().enumerate() {
            match mode {
                QueryMode::Subset => {
                    println!("  {}. {:<24} est. row jaccard {:.3}", i + 1, h.table_id, h.score)
                }
                _ => println!(
                    "  {}. {:<24} {} cols, distance sum {:.4}",
                    i + 1,
                    h.table_id,
                    h.matching_columns,
                    h.score
                ),
            }
        }
    }
    cat.commit()?;

    // The second open reuses the on-disk HNSW cache: no graph rebuild.
    let cat2 = Catalog::open(&cat_dir)?;
    println!("\nsecond cold open: index cached = {}", cat2.stats().index_cached);
    Ok(())
}
