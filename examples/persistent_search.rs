//! Durable end-to-end discovery: generate a small synthetic lake, write it
//! out as real CSV files, ingest them into a persistent catalog, *close
//! everything*, then reopen cold and serve join/union/subset queries
//! through the typed discovery API — the production-shaped path where
//! index build cost is paid once and every query runs against an
//! immutable [`Searcher`] snapshot.
//!
//! `cargo run --release --example persistent_search`

use std::fs;
use tabsketchfm::lake::{gen_join_search, JoinSearchConfig, World, WorldConfig};
use tabsketchfm::store::{Catalog, DiscoveryRequest, DiscoveryResponse, QueryMode, StoreError};
use tabsketchfm::table::csv;

fn main() -> Result<(), StoreError> {
    let root = std::env::temp_dir().join(format!("tsfm_persistent_search_{}", std::process::id()));
    let csv_dir = root.join("lake");
    let cat_dir = root.join("catalog");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&csv_dir)?;

    // 1. A synthetic lake, written as plain CSV files on disk.
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(
        &world,
        &JoinSearchConfig {
            groups: 4,
            tables_per_group: 5,
            low_overlap_per_group: 1,
            distractors: 8,
            seed: 5,
        },
    );
    for t in &bench.tables {
        fs::write(csv_dir.join(format!("{}.csv", t.id)), csv::table_to_csv(t))?;
    }
    // One table that is a literal row-subset of the first query table, so
    // the subset workload has a true answer.
    let query_id = bench.tables[bench.queries[0]].id.clone();
    let base = csv::table_to_csv(&bench.tables[bench.queries[0]]);
    let half: Vec<&str> = base.lines().take(1 + (base.lines().count() - 1) / 2).collect();
    fs::write(csv_dir.join("row_subset.csv"), half.join("\n") + "\n")?;
    println!("wrote {} CSV files to {}", bench.tables.len() + 1, csv_dir.display());

    // 2. Ingest into a catalog, then drop it — nothing survives in memory.
    {
        let mut cat = Catalog::open(&cat_dir)?;
        let report = cat.ingest_dir(&csv_dir)?;
        println!(
            "ingest: {} added, {} unchanged ({} sketched)",
            report.added,
            report.unchanged,
            report.sketched()
        );
        // Re-ingesting is free: every content hash matches.
        let again = cat.ingest_dir(&csv_dir)?;
        println!("re-ingest: {} sketched (incremental no-op)", again.sketched());
    }

    // 3. Reopen cold — as a fresh process would — and take one immutable
    // searcher snapshot for all queries (no `&mut` on the read path).
    let mut cat = Catalog::open(&cat_dir)?;
    println!(
        "\nreopened catalog: {} tables, index cached: {}",
        cat.len(),
        cat.stats().index_cached
    );
    let searcher = cat.searcher()?;

    // The query table is already in the corpus — address it by id.
    for mode in QueryMode::ALL {
        let req = DiscoveryRequest::builder(mode).k(5).build()?;
        let resp = searcher.search_id(&query_id, &req)?;
        print_response(&resp);
    }

    // 4. The builder's knobs: explanations show which query column matched
    // which corpus column (the Fig.-6 ranking made transparent), and
    // min_score trims weak subset candidates.
    let req = DiscoveryRequest::builder(QueryMode::Join).k(3).explain(true).build()?;
    let resp = searcher.search_id(&query_id, &req)?;
    println!("\njoin explanations for {query_id}:");
    for (hit, ex) in resp.hits.iter().zip(resp.explanations.as_deref().unwrap_or_default()) {
        println!("  {}:", hit.table_id);
        for m in &ex.matches {
            println!("    {} → {} (distance {:.4})", m.query_column, m.corpus_column, m.distance);
        }
    }

    let req = DiscoveryRequest::builder(QueryMode::Subset).k(5).min_score(0.2).build()?;
    let resp = searcher.search_id(&query_id, &req)?;
    println!("\nsubset candidates with est. jaccard ≥ 0.2: {}", resp.hits.len());

    // Invalid requests fail with typed errors instead of empty output.
    let err = DiscoveryRequest::builder(QueryMode::Join).k(0).build().unwrap_err();
    println!("k = 0 is rejected up front: {err}");
    let err = searcher.search_id("no_such_table", &DiscoveryRequest::builder(QueryMode::Join).build()?);
    println!("unknown id is typed too: {}", err.unwrap_err());

    cat.commit()?;

    // The second open reuses the on-disk HNSW cache: no graph rebuild.
    let cat2 = Catalog::open(&cat_dir)?;
    println!("\nsecond cold open: index cached = {}", cat2.stats().index_cached);
    Ok(())
}

fn print_response(resp: &DiscoveryResponse) {
    println!("\ntop-{} {} candidates for {} ({}µs):", resp.hits.len(), resp.mode, resp.query_id, resp.elapsed_micros);
    for (i, h) in resp.hits.iter().enumerate() {
        match resp.mode {
            QueryMode::Subset => {
                println!("  {}. {:<24} est. row jaccard {:.3}", i + 1, h.table_id, h.score)
            }
            _ => println!(
                "  {}. {:<24} {} cols, distance sum {:.4}",
                i + 1,
                h.table_id,
                h.matching_columns,
                h.score
            ),
        }
    }
}
