//! The full training pipeline of the paper at demo scale: generate a
//! synthetic lake, pretrain TabSketchFM with whole-column MLM (Fig. 2a),
//! fine-tune a cross-encoder on a join task (Fig. 2b), and evaluate.
//!
//! `cargo run --release --example pretrain_and_finetune`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tabsketchfm::core::{
    encode_table, finetune, pair_sequence, pretrain, CrossEncoder, FinetuneConfig, Label,
    ModelConfig, PairDataset, PretrainConfig, SketchToggle, TabSketchFM,
};
use tabsketchfm::lake::{gen_pretrain_corpus, gen_spider_join, World, WorldConfig};
use tabsketchfm::search::weighted_f1;
use tabsketchfm::sketch::{MinHasher, SketchConfig, TableSketch};
use tabsketchfm::tokenizer::VocabBuilder;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = gen_pretrain_corpus(&world, 30, 0);
    let task = gen_spider_join(&world, 80, 0);

    // Vocabulary over metadata: descriptions + headers.
    let mut vb = VocabBuilder::new();
    for t in corpus.iter().chain(task.tables.iter()) {
        vb.add_text(&t.description);
        for c in &t.columns {
            vb.add_text(&c.name);
        }
    }
    let vocab = vb.build(1, 4000);

    let mut cfg = ModelConfig::small(vocab.len());
    cfg.minhash_k = 16;
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = TabSketchFM::new(cfg.clone(), &mut rng);
    println!("model: {} parameters", model.num_parameters());

    // 1. Pretraining: MLM with whole-column masking + shuffle augmentation.
    let report = pretrain(
        &mut model,
        &corpus,
        &vocab,
        &PretrainConfig { epochs: 3, augment_copies: 1, ..Default::default() },
        0.1,
    );
    println!(
        "pretraining: {} examples, loss {:.3} -> {:.3}",
        report.examples,
        report.train_losses.first().unwrap(),
        report.train_losses.last().unwrap()
    );

    // 2. Fine-tuning: binary joinability cross-encoder.
    let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
    let hasher = MinHasher::new(scfg.minhash_k, scfg.seed);
    let sketches: Vec<TableSketch> = task
        .tables
        .iter()
        .map(|t| TableSketch::build_with_hasher(t, &hasher, scfg.max_rows))
        .collect();
    let encode = |idxs: &[usize]| -> PairDataset {
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for &i in idxs {
            let (a, b, l) = &task.pairs[i];
            let ea = encode_table(&sketches[*a], &vocab, &cfg.input, SketchToggle::ALL);
            let eb = encode_table(&sketches[*b], &vocab, &cfg.input, SketchToggle::ALL);
            seqs.push(pair_sequence(&ea, &eb, &cfg.input));
            labels.push(l.clone());
        }
        PairDataset { seqs, labels }
    };
    let train = encode(&task.splits.train);
    let valid = encode(&task.splits.valid);
    let test = encode(&task.splits.test);

    let mut ce = CrossEncoder::new(model, task.task, &mut rng);
    let report = finetune(
        &mut ce,
        &train,
        &valid,
        &FinetuneConfig { epochs: 10, lr: 2e-3, patience: 10, ..Default::default() },
    );
    println!(
        "fine-tuning: loss {:.3} -> {:.3} (early stop: {})",
        report.train_losses.first().unwrap(),
        report.train_losses.last().unwrap(),
        report.stopped_early
    );

    // 3. Evaluate with the paper's metric (weighted F1).
    let preds = ce.predict(&test.seqs, 8);
    let yhat: Vec<usize> = preds.iter().map(|p| (p[1] > p[0]) as usize).collect();
    let gold: Vec<usize> = test
        .labels
        .iter()
        .map(|l| match l {
            Label::Binary(b) => *b as usize,
            _ => unreachable!(),
        })
        .collect();
    println!("test weighted F1: {:.3}", weighted_f1(&yhat, &gold));
}
