//! Quickstart: load CSV tables, sketch them, compare columns, and get
//! TabSketchFM embeddings — the 5-minute tour of the public API.
//!
//! `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tabsketchfm::core::{
    column_embeddings, cosine, encode_table, single_sequence, ModelConfig, SketchToggle,
    TabSketchFM,
};
use tabsketchfm::sketch::{SketchConfig, TableSketch};
use tabsketchfm::table::csv::table_from_csv;
use tabsketchfm::tokenizer::VocabBuilder;

fn main() {
    // 1. Parse CSV into typed tables (type inference per paper §III-B.4).
    let housing = table_from_csv(
        "housing",
        "Residential Properties",
        "Reference Area,Age,Assessed Value\n\
         Austria Vienna,10,412000\n\
         Austria Graz,55,198000\n\
         Austria Linz,31,240000\n",
    );
    let people = table_from_csv(
        "people",
        "Employees",
        "Full Name,Age,Start Date\n\
         Maria Gruber,34,2015-04-01\n\
         Jonas Leitner,51,2009-10-15\n",
    );
    println!("housing: {} rows x {} cols", housing.num_rows(), housing.num_cols());
    for c in &housing.columns {
        println!("  column {:?} inferred as {}", c.name, c.ty.name());
    }

    // 2. Build the paper's sketches: content snapshot + per-column MinHash
    //    and numerical sketches.
    let cfg = SketchConfig::default();
    let sk_housing = TableSketch::build(&housing, &cfg);
    let sk_people = TableSketch::build(&people, &cfg);
    let j = sk_housing.columns[1]
        .cell_minhash
        .jaccard(&sk_people.columns[1].cell_minhash);
    println!("\nestimated Jaccard of the two Age columns' values: {j:.2}");
    println!(
        "housing Age numerical sketch (p10..p90, mean, std, min, max): {:?}",
        &sk_housing.columns[1].numeric.to_vec()[3..]
    );

    // 3. Feed sketches to a TabSketchFM encoder and extract contextual
    //    column embeddings. (Untrained here — see the other examples for
    //    pretraining and fine-tuning.)
    let mut vb = VocabBuilder::new();
    for t in [&housing, &people] {
        vb.add_text(&t.name);
        for c in &t.columns {
            vb.add_text(&c.name);
        }
    }
    let vocab = vb.build(1, 1000);
    let mut model_cfg = ModelConfig::small(vocab.len());
    model_cfg.minhash_k = cfg.minhash_k;
    let mut rng = StdRng::seed_from_u64(0);
    let model = TabSketchFM::new(model_cfg.clone(), &mut rng);
    println!("\nTabSketchFM with {} parameters", model.num_parameters());

    let enc_h = encode_table(&sk_housing, &vocab, &model_cfg.input, SketchToggle::ALL);
    let enc_p = encode_table(&sk_people, &vocab, &model_cfg.input, SketchToggle::ALL);
    let cols_h = column_embeddings(&model, &single_sequence(&enc_h, &model_cfg.input));
    let cols_p = column_embeddings(&model, &single_sequence(&enc_p, &model_cfg.input));
    println!(
        "cos(housing.Age, people.Age) = {:.3} — same header, different context & sketches",
        cosine(&cols_h[1].1, &cols_p[1].1)
    );
    println!(
        "cos(housing.Age, housing.'Reference Area') = {:.3}",
        cosine(&cols_h[1].1, &cols_h[0].1)
    );
}
