//! Subset search with the Fig.-7 Eurostat recipe: each query table has 11
//! derived variants (row/column samples and shuffles); sketches find them.
//!
//! `cargo run --release --example subset_search`

use tabsketchfm::lake::{gen_eurostat_subset, World, WorldConfig, EUROSTAT_VARIANTS};
use tabsketchfm::search::{evaluate_search, MinHashLsh};
use tabsketchfm::sketch::{content_snapshot, MinHasher};

fn main() {
    let world = World::generate(WorldConfig::default());
    let bench = gen_eurostat_subset(&world, 10, 5);
    println!(
        "corpus: {} tables = {} queries x (1 + {} variants per Fig. 7)",
        bench.tables.len(),
        bench.queries.len(),
        EUROSTAT_VARIANTS.len()
    );

    // Content snapshots: row-set MinHash. A row subset of a table shares
    // rows with it, so snapshot similarity finds subsets directly.
    let mh = MinHasher::new(128, 0);
    let sigs: Vec<_> =
        bench.tables.iter().map(|t| content_snapshot(t, &mh, 10_000)).collect();
    let mut lsh = MinHashLsh::new(32, 4);
    for s in &sigs {
        lsh.add(s.clone());
    }

    let k = 11;
    let retrieved: Vec<Vec<usize>> = bench
        .queries
        .iter()
        .map(|&q| {
            lsh.search(&sigs[q], k + 1)
                .into_iter()
                .filter(|&(id, _)| id != q)
                .take(k)
                .map(|(id, _)| id)
                .collect()
        })
        .collect();
    let s = evaluate_search(&retrieved, &bench.gold, k);
    println!(
        "content-snapshot MinHash LSH: mean F1 {:.1}%  P@{k} {:.2}  R@{k} {:.2}",
        100.0 * s.mean_f1,
        s.mean_precision,
        s.mean_recall
    );
    println!("(column-shuffled variants change the content snapshot — §III-C — so");
    println!(" pure row-set matching misses them; the neural model closes that gap.)");
    println!("\nFor the model-based comparison (Table VIII), run:");
    println!("  cargo run --release -p tsfm_bench --bin exp_table8");
}
