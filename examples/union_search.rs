//! Unionable-table search with the paper's Fig.-6 ranking over column
//! embeddings (here: the SBERT-style value encoder, which §IV-C2 found
//! surprisingly strong for union search).
//!
//! `cargo run --release --example union_search`

use tabsketchfm::baselines::SentenceEncoder;
use tabsketchfm::lake::{gen_union_search, UnionSearchConfig, World, WorldConfig};
use tabsketchfm::search::{evaluate_search, ranked_table_ids, BruteForceIndex, ColumnHit, Metric};

fn main() {
    let world = World::generate(WorldConfig::default());
    let bench = gen_union_search(&world, "demo", &UnionSearchConfig::santos_style());
    println!(
        "lake: {} tables in {}-table unionable clusters (+ distractors), {} queries",
        bench.tables.len(),
        10,
        bench.queries.len()
    );

    // Column embeddings: top-100 unique values as one sentence.
    let enc = SentenceEncoder::default();
    let mut vecs = Vec::new();
    let mut owner = Vec::new();
    for (ti, t) in bench.tables.iter().enumerate() {
        for c in &t.columns {
            vecs.push(enc.encode_column(c, 100));
            owner.push(ti);
        }
    }
    let mut index = BruteForceIndex::new(enc.dim, Metric::Cosine);
    for v in &vecs {
        index.add(v);
    }

    // Fig. 6: KNNSEARCH per query column (k·3 over-retrieval), then
    // RANK1 (matching columns) / RANK2 (distance sum).
    let k = 10;
    let retrieved: Vec<Vec<usize>> = bench
        .queries
        .iter()
        .map(|&q| {
            let per_col: Vec<Vec<ColumnHit>> = (0..vecs.len())
                .filter(|&ci| owner[ci] == q)
                .map(|ci| {
                    index
                        .search(&vecs[ci], k * 3)
                        .into_iter()
                        .map(|(id, d)| ColumnHit { table: owner[id], column: id, distance: d })
                        .collect()
                })
                .collect();
            let mut ids = ranked_table_ids(&per_col, Some(q));
            ids.truncate(k);
            ids
        })
        .collect();

    let s = evaluate_search(&retrieved, &bench.gold, k);
    println!(
        "SBERT column embeddings + Fig-6 ranking: mean F1 {:.1}%  P@{k} {:.2}  R@{k} {:.2}",
        100.0 * s.mean_f1,
        s.mean_precision,
        s.mean_recall
    );
    println!("\nFor the full comparisons (Tables VI/VII), run:");
    println!("  cargo run --release -p tsfm_bench --bin exp_table6   # SANTOS-style");
    println!("  cargo run --release -p tsfm_bench --bin exp_table7   # TUS-style");
}
