//! `tsfm` — the data-lake discovery CLI and server over the persistent
//! catalog.
//!
//! ```text
//! tsfm ingest <catalog-dir> <csv-dir> [--trace FILE]      sketch + store every *.csv
//! tsfm query  <catalog-dir> <query.csv> [--mode M] [--k N]
//!             [--min-score S] [--json] [--explain]
//!             [--trace FILE]                              rank the corpus for a query table
//! tsfm serve  <catalog-dir> [--port N] [--host H]         JSONL-over-TCP discovery server
//! tsfm stats  <catalog-dir>                               catalog summary
//! tsfm stats  --addr HOST:PORT                            live-server stats + metrics
//! tsfm fsck   <catalog-dir> [--repair]                    verify checksums, repair damage
//! tsfm compact <catalog-dir>                              fold loose segments into shards
//! ```
//!
//! Modes: `join` (default), `union`, `subset`. Re-running `ingest` on an
//! unchanged directory is a no-op (content hashes match); the first query
//! after any change rebuilds the ANN indexes and caches them on disk.
//!
//! `serve` runs the bounded-concurrency frontend from
//! `tsfm_store::serve`: a fixed worker pool with accept-queue shedding,
//! per-connection idle/read/write timeouts, a request-line length cap,
//! pipelining, graceful shutdown, and a `{"op":"stats"}` ops verb. A
//! watcher thread polls the catalog manifest and hot-swaps in a fresh
//! [`Searcher`](tabsketchfm::store::Searcher) snapshot when another
//! process ingests new tables — in-flight queries keep the snapshot they
//! started with. The wire protocol (one JSON request per line, one JSON
//! response line back) is documented in `tsfm_store::wire`.
//!
//! `fsck` verifies every checksum in the store (manifest, segments,
//! index cache), detects orphaned/missing segments and leftover staging
//! files, and prints one structured JSON report. With `--repair` bad
//! segments are quarantined under `<catalog>/quarantine/`, their manifest
//! entries dropped, and the index cache rebuilt — a damaged store
//! degrades to a smaller-but-correct one. Exit codes: 0 the store is (or
//! was repaired to be) consistent, 1 unrepaired damage remains, 2 usage
//! or environmental error.
//!
//! `--trace FILE` on `ingest`/`query` enables `tsfm_obs` tracing for the
//! duration of the command and writes the recorded spans as Chrome
//! `trace_event` JSON — open the file in `chrome://tracing` or Perfetto
//! to see the per-stage timeline. `tsfm stats --addr HOST:PORT` talks to
//! a running `tsfm serve` instead of a local catalog directory, issuing
//! the `stats` and `metrics` ops verbs and pretty-printing both.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;
use tabsketchfm::store::{
    wire, Catalog, DiscoveryRequest, DiscoveryResponse, QueryMode, ServeConfig, Server,
    ServerHandle, StoreError,
};
use tabsketchfm::table::csv;

const USAGE: &str = "usage:
  tsfm ingest <catalog-dir> <csv-dir> [--threads N] [--trace FILE]
  tsfm query  <catalog-dir> <query.csv> [--mode join|union|subset] [--k N]
              [--min-score S] [--json] [--explain] [--trace FILE]
  tsfm serve  <catalog-dir> [--port N] [--host H] [--max-conns N]
              [--idle-timeout-ms N] [--read-timeout-ms N]
              [--write-timeout-ms N] [--max-line-bytes N] [--reload-ms N]
  tsfm stats  <catalog-dir>
  tsfm stats  --addr HOST:PORT
  tsfm fsck   <catalog-dir> [--repair]
  tsfm compact <catalog-dir>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        // fsck owns its exit codes: 0 consistent (possibly after repair),
        // 1 unrepaired damage, 2 usage/environment.
        Some("fsck") => return cmd_fsck(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tsfm: {e}");
            ExitCode::from(2)
        }
    }
}

/// Drain every recorded span and write Chrome `trace_event` JSON to
/// `path`. The export is round-tripped through the store's own JSON
/// parser first, so a malformed trace fails loudly here rather than
/// silently refusing to load in Perfetto.
fn write_trace(path: &str) -> Result<(), String> {
    tsfm_obs::trace::disable();
    let records = tsfm_obs::trace::drain();
    let json = tsfm_obs::trace::chrome_trace_json(&records);
    wire::parse_json(&json)
        .map_err(|e| format!("internal: trace export is not valid JSON: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("tsfm: wrote {} spans to {path}", records.len());
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    // Default the sketching pool to the host's available parallelism;
    // `--threads 1` forces the serial path.
    let mut threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut trace_out = None::<String>;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse()
                    .ok()
                    .filter(|&t: &usize| t >= 1)
                    .ok_or(format!("invalid threads {v:?} (need an integer >= 1)"))?;
            }
            "--trace" => {
                trace_out = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir, csv_dir] = &positional[..] else {
        return Err(USAGE.to_string());
    };
    if !Path::new(csv_dir).is_dir() {
        return Err(format!("{csv_dir}: not a directory"));
    }
    if trace_out.is_some() {
        tsfm_obs::trace::enable();
    }
    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let report = cat
        .ingest_dir_with_threads(csv_dir, threads)
        .map_err(|e| format!("ingest {csv_dir}: {e}"))?;
    println!(
        "ingested {csv_dir}: {} added, {} updated, {} unchanged ({} sketched)",
        report.added,
        report.updated,
        report.unchanged,
        report.sketched()
    );
    for (file, err) in &report.failed {
        eprintln!("tsfm: skipped {file}: {err}");
    }
    println!("catalog {catalog_dir}: {} tables", cat.len());
    if let Some(path) = &trace_out {
        write_trace(path)?;
    }
    if report.failed.is_empty() {
        Ok(())
    } else {
        Err(format!("{} file(s) failed to ingest", report.failed.len()))
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (mut mode, mut k) = (QueryMode::Join, 10usize);
    let (mut json, mut explain, mut min_score) = (false, false, None::<f64>);
    let mut trace_out = None::<String>;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                trace_out = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value")?;
                // FromStr is the one shared mode parser; its error already
                // lists the valid modes.
                mode = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                k = v.parse().map_err(|_| format!("invalid k {v:?}"))?;
            }
            "--min-score" => {
                let v = it.next().ok_or("--min-score needs a value")?;
                min_score = Some(v.parse().map_err(|_| format!("invalid min-score {v:?}"))?);
            }
            "--json" => json = true,
            "--explain" => explain = true,
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir, query_csv] = &positional[..] else {
        return Err(USAGE.to_string());
    };
    if trace_out.is_some() {
        tsfm_obs::trace::enable();
    }

    // Build the request first: an invalid one (e.g. --k 0) must fail fast
    // with the engine's own message, before any catalog I/O.
    let mut builder = DiscoveryRequest::builder(mode).k(k).explain(explain);
    if let Some(ms) = min_score {
        builder = builder.min_score(ms);
    }
    let req = builder.build().map_err(|e| e.to_string())?;

    let text = std::fs::read_to_string(query_csv).map_err(|e| format!("{query_csv}: {e}"))?;
    let id = Path::new(query_csv)
        .file_stem().map_or_else(|| "query".into(), |s| s.to_string_lossy().into_owned());
    let table = csv::table_from_csv(&id, &id, &text);

    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    if cat.is_empty() {
        return Err(format!("catalog {catalog_dir} is empty — run `tsfm ingest` first"));
    }
    let searcher = cat.searcher().map_err(|e| format!("open index: {e}"))?;
    let resp = searcher.search_table(&table, &req).map_err(|e| format!("query: {e}"))?;
    // The snapshot build may have written the index cache; persist the
    // manifest fingerprinting it.
    cat.commit().map_err(|e| format!("commit: {e}"))?;
    if let Some(path) = &trace_out {
        write_trace(path)?;
    }

    if json {
        if explain {
            // Explanations live at the response level; emit the full
            // response object (exactly what the serve loop would send).
            println!("{}", wire::response_json(&resp));
        } else {
            // One JSON object per hit — the same serializer the serve
            // loop uses for its `hits` array.
            for (i, h) in resp.hits.iter().enumerate() {
                println!("{}", wire::hit_json(i + 1, h));
            }
        }
        return Ok(());
    }
    print_response_human(&resp, table.num_cols());
    Ok(())
}

fn print_response_human(resp: &DiscoveryResponse, query_cols: usize) {
    println!(
        "{} results for {} ({} columns) over {} tables [mode={}] in {}µs",
        resp.hits.len(),
        resp.query_id,
        query_cols,
        resp.corpus_size,
        resp.mode,
        resp.elapsed_micros
    );
    for (rank, h) in resp.hits.iter().enumerate() {
        match resp.mode {
            QueryMode::Subset => {
                println!("{:>3}. {:<32} est. row jaccard {:.3}", rank + 1, h.table_id, h.score)
            }
            _ => println!(
                "{:>3}. {:<32} {} matching cols, distance sum {:.4}",
                rank + 1,
                h.table_id,
                h.matching_columns,
                h.score
            ),
        }
        if let Some(ex) = resp.explanations.as_ref().and_then(|ex| ex.get(rank)) {
            for m in &ex.matches {
                println!(
                    "       {} → {} (distance {:.4})",
                    m.query_column, m.corpus_column, m.distance
                );
            }
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (mut port, mut host) = (7474u16, "127.0.0.1".to_string());
    let mut cfg = ServeConfig::default();
    let mut reload_ms = 2000u64;
    let mut positional = Vec::new();
    // Millisecond / count flags share one parse shape.
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
        let v = it.next().ok_or(format!("{name} needs a value"))?;
        v.parse().map_err(|_| format!("invalid {name} {v:?}"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                let v = it.next().ok_or("--port needs a value")?;
                port = v.parse().map_err(|_| format!("invalid port {v:?}"))?;
            }
            "--host" => {
                host = it.next().ok_or("--host needs a value")?.clone();
            }
            "--max-conns" => {
                cfg.max_connections = num(&mut it, "--max-conns")? as usize;
                cfg.pending_capacity = cfg.max_connections;
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(num(&mut it, "--idle-timeout-ms")?)
            }
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(num(&mut it, "--read-timeout-ms")?)
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(num(&mut it, "--write-timeout-ms")?)
            }
            "--max-line-bytes" => cfg.max_line_bytes = num(&mut it, "--max-line-bytes")? as usize,
            "--reload-ms" => reload_ms = num(&mut it, "--reload-ms")?,
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir] = &positional[..] else {
        return Err(USAGE.to_string());
    };

    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    // Pay the index build once, up front, before accepting traffic.
    let searcher = cat.searcher().map_err(|e| format!("open index: {e}"))?;
    cat.commit().map_err(|e| format!("commit: {e}"))?;
    let manifest = cat.manifest_path();
    drop(cat);

    let tables = searcher.len();
    let server = Server::bind((host.as_str(), port), searcher, cfg)
        .map_err(|e| format!("bind {host}:{port}: {e}"))?;
    let addr = server.local_addr();
    // Tests and scripts parse this line for the actual port (`--port 0`
    // binds an ephemeral one).
    println!("tsfm: serving {tables} tables on {addr}");
    std::io::stdout().flush().ok();

    // Hot reload: poll the manifest for mutations committed by another
    // process (`tsfm ingest` against the same directory) and swap a fresh
    // snapshot in without dropping in-flight queries. `--reload-ms 0`
    // disables the watcher.
    if reload_ms > 0 {
        let handle = server.handle();
        let dir = catalog_dir.clone();
        std::thread::spawn(move || watch_manifest(&handle, &dir, &manifest, reload_ms));
    }

    server.run().map_err(|e| format!("serve: {e}"))
}

/// Detached watcher: on every manifest mtime/len change, rebuild a
/// snapshot and hot-swap it into the running server. The server keeps
/// answering from the snapshot it has while a rebuild is in flight.
///
/// Rebuild failures are usually transient — a reload can race another
/// process mid-commit and read a half-replaced file set — so instead of
/// waiting a full `--reload-ms` cycle the watcher retries with
/// exponential backoff (an eighth of the poll interval, doubling back up
/// to it), counting each failure in `tsfm_serve_reload_failures_total`.
fn watch_manifest(handle: &ServerHandle, catalog_dir: &str, manifest: &Path, reload_ms: u64) {
    // Register up front so the metrics verb exports the counter (at 0)
    // even before the first failed reload.
    let failures = tsfm_obs::metrics::global().counter(
        "tsfm_serve_reload_failures_total",
        "Catalog hot-reload attempts that failed and were retried with backoff",
    );
    let stat = |p: &Path| {
        std::fs::metadata(p)
            .ok()
            .map(|m| (m.len(), m.modified().ok()))
    };
    let mut last = stat(manifest);
    let mut delay = reload_ms;
    loop {
        std::thread::sleep(Duration::from_millis(delay));
        let now = stat(manifest);
        if now == last {
            delay = reload_ms;
            continue;
        }
        // Contain rebuild panics: the watcher is a detached thread, so an
        // unwinding panic here would silently end hot reload while the
        // server keeps answering. Fold panics into the logged-and-retried
        // error path instead.
        let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Catalog::open(catalog_dir).and_then(|mut cat| {
                let s = cat.searcher()?;
                cat.commit()?;
                Ok(s)
            })
        }))
        .unwrap_or_else(|_| Err(StoreError::internal("catalog rebuild panicked")));
        match rebuilt {
            Ok(fresh) => {
                let tables = fresh.len();
                let generation = handle.swap_searcher(fresh);
                eprintln!("tsfm: reloaded catalog ({tables} tables, reload #{generation})");
                last = stat(manifest);
                delay = reload_ms;
            }
            Err(e) => {
                failures.inc();
                // Leave `last` as-is so the next wake-up retries — and
                // wake up sooner than the regular cadence.
                delay = if delay >= reload_ms {
                    (reload_ms / 8).max(50).min(reload_ms)
                } else {
                    (delay * 2).min(reload_ms)
                };
                eprintln!(
                    "tsfm: catalog reload failed (still serving old snapshot, \
                     retrying in {delay}ms): {e}"
                );
            }
        }
    }
}

/// `tsfm fsck <catalog-dir> [--repair]` — verify every checksum and
/// print the structured JSON report from [`tabsketchfm::store::fsck`].
fn cmd_fsck(args: &[String]) -> ExitCode {
    let mut repair = false;
    let mut positional = Vec::new();
    for a in args {
        match a.as_str() {
            "--repair" => repair = true,
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir] = &positional[..] else {
        eprintln!("tsfm: {USAGE}");
        return ExitCode::from(2);
    };
    match tabsketchfm::store::fsck::fsck(Path::new(catalog_dir), repair) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.consistent_after() {
                ExitCode::SUCCESS
            } else {
                eprintln!("tsfm: {catalog_dir}: store is damaged (see report above)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tsfm: fsck {catalog_dir}: {e}");
            ExitCode::from(2)
        }
    }
}

/// `tsfm compact <catalog-dir>` — fold every loose segment and tombstone
/// into the sharded tier (`shards/sNNN-*.{shard,arena}`). This is also
/// the monolithic→sharded migration path: run it once against a catalog
/// written by an older release and subsequent opens read only the root
/// manifest plus fixed-size shard headers instead of every segment.
fn cmd_compact(args: &[String]) -> Result<(), String> {
    let [catalog_dir] = args else {
        return Err(USAGE.to_string());
    };
    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let tables = cat.len();
    let started = std::time::Instant::now();
    cat.compact().map_err(|e| format!("compact {catalog_dir}: {e}"))?;
    println!(
        "compacted {catalog_dir}: {tables} tables into {} shard(s) in {}ms",
        cat.shard_count(),
        started.elapsed().as_millis()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("--addr") {
        let [_, addr] = args else {
            return Err(USAGE.to_string());
        };
        return cmd_stats_remote(addr);
    }
    let [catalog_dir] = args else {
        return Err(USAGE.to_string());
    };
    let cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let s = cat.stats();
    println!("catalog {catalog_dir}");
    println!("  tables        {}", s.tables);
    println!("  columns       {}", s.columns);
    println!("  rows          {}", s.rows);
    println!("  segment bytes {}", s.segment_bytes);
    println!("  minhash k     {}", s.minhash_k);
    println!("  index cached  {}", s.index_cached);
    println!("  shards        {}", s.shards);
    Ok(())
}

/// `tsfm stats --addr HOST:PORT` — interrogate a *running* server over
/// its wire protocol: one `{"op":"stats"}` request, one `{"op":"metrics"}`
/// request, both pretty-printed.
fn cmd_stats_remote(addr: &str) -> Result<(), String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let timeout = Some(Duration::from_secs(10));
    stream.set_read_timeout(timeout).ok();
    stream.set_write_timeout(timeout).ok();
    let mut reader =
        std::io::BufReader::new(stream.try_clone().map_err(|e| format!("connect {addr}: {e}"))?);
    let mut writer = stream;

    let stats = request_op(&mut writer, &mut reader, "stats")?;
    let metrics = request_op(&mut writer, &mut reader, "metrics")?;

    println!("server {addr}");
    let body = stats.get("stats").ok_or("malformed stats reply (no \"stats\" object)")?;
    print_json_tree(body, 1);

    let text = metrics
        .get("metrics")
        .and_then(|m| m.as_str())
        .ok_or("malformed metrics reply (no \"metrics\" string)")?;
    println!("metrics");
    for line in text.lines() {
        println!("  {line}");
    }
    Ok(())
}

/// Send one ops verb and parse the single-line JSON reply. A reply
/// carrying `"error"` becomes this command's failure.
fn request_op(
    writer: &mut std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
    op: &str,
) -> Result<wire::Json, String> {
    use std::io::BufRead;
    writeln!(writer, "{{\"op\":\"{op}\"}}").map_err(|e| format!("send {op}: {e}"))?;
    writer.flush().map_err(|e| format!("send {op}: {e}"))?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read {op} reply: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("server closed the connection before answering {op}"));
    }
    let v = wire::parse_json(line.trim()).map_err(|e| format!("bad {op} reply: {e}"))?;
    if let Some(err) = v.get("error") {
        let detail = err.get("detail").and_then(|d| d.as_str()).unwrap_or("unknown error");
        return Err(format!("{op}: server error: {detail}"));
    }
    Ok(v)
}

/// Indented key/value rendering of a parsed JSON object — nested objects
/// become deeper indentation, integral numbers print without the float
/// tail.
fn print_json_tree(v: &wire::Json, indent: usize) {
    let wire::Json::Obj(fields) = v else { return };
    let pad = "  ".repeat(indent);
    let width = fields.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, val) in fields {
        match val {
            wire::Json::Obj(_) => {
                println!("{pad}{k}");
                print_json_tree(val, indent + 1);
            }
            wire::Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                println!("{pad}{k:<width$} {}", *n as i64)
            }
            wire::Json::Num(n) => println!("{pad}{k:<width$} {n}"),
            wire::Json::Str(s) => println!("{pad}{k:<width$} {s}"),
            wire::Json::Bool(b) => println!("{pad}{k:<width$} {b}"),
            wire::Json::Null => println!("{pad}{k:<width$} null"),
            wire::Json::Arr(a) => println!("{pad}{k:<width$} [{} items]", a.len()),
        }
    }
}
