//! `tsfm` — the data-lake discovery CLI and server over the persistent
//! catalog.
//!
//! ```text
//! tsfm ingest <catalog-dir> <csv-dir>                     sketch + store every *.csv
//! tsfm query  <catalog-dir> <query.csv> [--mode M] [--k N]
//!             [--min-score S] [--json] [--explain]        rank the corpus for a query table
//! tsfm serve  <catalog-dir> [--port N] [--host H]         JSONL-over-TCP discovery server
//! tsfm stats  <catalog-dir>                               catalog summary
//! ```
//!
//! Modes: `join` (default), `union`, `subset`. Re-running `ingest` on an
//! unchanged directory is a no-op (content hashes match); the first query
//! after any change rebuilds the ANN indexes and caches them on disk.
//!
//! `serve` runs the bounded-concurrency frontend from
//! `tsfm_store::serve`: a fixed worker pool with accept-queue shedding,
//! per-connection idle/read/write timeouts, a request-line length cap,
//! pipelining, graceful shutdown, and a `{"op":"stats"}` ops verb. A
//! watcher thread polls the catalog manifest and hot-swaps in a fresh
//! [`Searcher`](tabsketchfm::store::Searcher) snapshot when another
//! process ingests new tables — in-flight queries keep the snapshot they
//! started with. The wire protocol (one JSON request per line, one JSON
//! response line back) is documented in `tsfm_store::wire`.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;
use tabsketchfm::store::{
    wire, Catalog, DiscoveryRequest, DiscoveryResponse, QueryMode, ServeConfig, Server,
    ServerHandle,
};
use tabsketchfm::table::csv;

const USAGE: &str = "usage:
  tsfm ingest <catalog-dir> <csv-dir> [--threads N]
  tsfm query  <catalog-dir> <query.csv> [--mode join|union|subset] [--k N]
              [--min-score S] [--json] [--explain]
  tsfm serve  <catalog-dir> [--port N] [--host H] [--max-conns N]
              [--idle-timeout-ms N] [--read-timeout-ms N]
              [--write-timeout-ms N] [--max-line-bytes N] [--reload-ms N]
  tsfm stats  <catalog-dir>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tsfm: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    // Default the sketching pool to the host's available parallelism;
    // `--threads 1` forces the serial path.
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse()
                    .ok()
                    .filter(|&t: &usize| t >= 1)
                    .ok_or(format!("invalid threads {v:?} (need an integer >= 1)"))?;
            }
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir, csv_dir] = &positional[..] else {
        return Err(USAGE.to_string());
    };
    if !Path::new(csv_dir).is_dir() {
        return Err(format!("{csv_dir}: not a directory"));
    }
    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let report = cat
        .ingest_dir_with_threads(csv_dir, threads)
        .map_err(|e| format!("ingest {csv_dir}: {e}"))?;
    println!(
        "ingested {csv_dir}: {} added, {} updated, {} unchanged ({} sketched)",
        report.added,
        report.updated,
        report.unchanged,
        report.sketched()
    );
    for (file, err) in &report.failed {
        eprintln!("tsfm: skipped {file}: {err}");
    }
    println!("catalog {catalog_dir}: {} tables", cat.len());
    if report.failed.is_empty() {
        Ok(())
    } else {
        Err(format!("{} file(s) failed to ingest", report.failed.len()))
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (mut mode, mut k) = (QueryMode::Join, 10usize);
    let (mut json, mut explain, mut min_score) = (false, false, None::<f64>);
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value")?;
                // FromStr is the one shared mode parser; its error already
                // lists the valid modes.
                mode = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                k = v.parse().map_err(|_| format!("invalid k {v:?}"))?;
            }
            "--min-score" => {
                let v = it.next().ok_or("--min-score needs a value")?;
                min_score = Some(v.parse().map_err(|_| format!("invalid min-score {v:?}"))?);
            }
            "--json" => json = true,
            "--explain" => explain = true,
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir, query_csv] = &positional[..] else {
        return Err(USAGE.to_string());
    };

    // Build the request first: an invalid one (e.g. --k 0) must fail fast
    // with the engine's own message, before any catalog I/O.
    let mut builder = DiscoveryRequest::builder(mode).k(k).explain(explain);
    if let Some(ms) = min_score {
        builder = builder.min_score(ms);
    }
    let req = builder.build().map_err(|e| e.to_string())?;

    let text = std::fs::read_to_string(query_csv).map_err(|e| format!("{query_csv}: {e}"))?;
    let id = Path::new(query_csv)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "query".into());
    let table = csv::table_from_csv(&id, &id, &text);

    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    if cat.is_empty() {
        return Err(format!("catalog {catalog_dir} is empty — run `tsfm ingest` first"));
    }
    let searcher = cat.searcher().map_err(|e| format!("open index: {e}"))?;
    let resp = searcher.search_table(&table, &req).map_err(|e| format!("query: {e}"))?;
    // The snapshot build may have written the index cache; persist the
    // manifest fingerprinting it.
    cat.commit().map_err(|e| format!("commit: {e}"))?;

    if json {
        if explain {
            // Explanations live at the response level; emit the full
            // response object (exactly what the serve loop would send).
            println!("{}", wire::response_json(&resp));
        } else {
            // One JSON object per hit — the same serializer the serve
            // loop uses for its `hits` array.
            for (i, h) in resp.hits.iter().enumerate() {
                println!("{}", wire::hit_json(i + 1, h));
            }
        }
        return Ok(());
    }
    print_response_human(&resp, table.num_cols());
    Ok(())
}

fn print_response_human(resp: &DiscoveryResponse, query_cols: usize) {
    println!(
        "{} results for {} ({} columns) over {} tables [mode={}] in {}µs",
        resp.hits.len(),
        resp.query_id,
        query_cols,
        resp.corpus_size,
        resp.mode,
        resp.elapsed_micros
    );
    for (rank, h) in resp.hits.iter().enumerate() {
        match resp.mode {
            QueryMode::Subset => {
                println!("{:>3}. {:<32} est. row jaccard {:.3}", rank + 1, h.table_id, h.score)
            }
            _ => println!(
                "{:>3}. {:<32} {} matching cols, distance sum {:.4}",
                rank + 1,
                h.table_id,
                h.matching_columns,
                h.score
            ),
        }
        if let Some(ex) = resp.explanations.as_ref().and_then(|ex| ex.get(rank)) {
            for m in &ex.matches {
                println!(
                    "       {} → {} (distance {:.4})",
                    m.query_column, m.corpus_column, m.distance
                );
            }
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (mut port, mut host) = (7474u16, "127.0.0.1".to_string());
    let mut cfg = ServeConfig::default();
    let mut reload_ms = 2000u64;
    let mut positional = Vec::new();
    // Millisecond / count flags share one parse shape.
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
        let v = it.next().ok_or(format!("{name} needs a value"))?;
        v.parse().map_err(|_| format!("invalid {name} {v:?}"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                let v = it.next().ok_or("--port needs a value")?;
                port = v.parse().map_err(|_| format!("invalid port {v:?}"))?;
            }
            "--host" => {
                host = it.next().ok_or("--host needs a value")?.clone();
            }
            "--max-conns" => {
                cfg.max_connections = num(&mut it, "--max-conns")? as usize;
                cfg.pending_capacity = cfg.max_connections;
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(num(&mut it, "--idle-timeout-ms")?)
            }
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(num(&mut it, "--read-timeout-ms")?)
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(num(&mut it, "--write-timeout-ms")?)
            }
            "--max-line-bytes" => cfg.max_line_bytes = num(&mut it, "--max-line-bytes")? as usize,
            "--reload-ms" => reload_ms = num(&mut it, "--reload-ms")?,
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir] = &positional[..] else {
        return Err(USAGE.to_string());
    };

    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    // Pay the index build once, up front, before accepting traffic.
    let searcher = cat.searcher().map_err(|e| format!("open index: {e}"))?;
    cat.commit().map_err(|e| format!("commit: {e}"))?;
    let manifest = cat.manifest_path();
    drop(cat);

    let tables = searcher.len();
    let server = Server::bind((host.as_str(), port), searcher, cfg)
        .map_err(|e| format!("bind {host}:{port}: {e}"))?;
    let addr = server.local_addr();
    // Tests and scripts parse this line for the actual port (`--port 0`
    // binds an ephemeral one).
    println!("tsfm: serving {tables} tables on {addr}");
    std::io::stdout().flush().ok();

    // Hot reload: poll the manifest for mutations committed by another
    // process (`tsfm ingest` against the same directory) and swap a fresh
    // snapshot in without dropping in-flight queries. `--reload-ms 0`
    // disables the watcher.
    if reload_ms > 0 {
        let handle = server.handle();
        let dir = catalog_dir.clone();
        std::thread::spawn(move || watch_manifest(&handle, &dir, &manifest, reload_ms));
    }

    server.run().map_err(|e| format!("serve: {e}"))
}

/// Detached watcher: on every manifest mtime/len change, rebuild a
/// snapshot and hot-swap it into the running server. Rebuild failures are
/// logged and retried on the next change — the server keeps answering
/// from the snapshot it has.
fn watch_manifest(handle: &ServerHandle, catalog_dir: &str, manifest: &Path, reload_ms: u64) {
    let stat = |p: &Path| {
        std::fs::metadata(p)
            .ok()
            .map(|m| (m.len(), m.modified().ok()))
    };
    let mut last = stat(manifest);
    loop {
        std::thread::sleep(Duration::from_millis(reload_ms));
        let now = stat(manifest);
        if now == last {
            continue;
        }
        match Catalog::open(catalog_dir).and_then(|mut cat| {
            let s = cat.searcher()?;
            cat.commit()?;
            Ok(s)
        }) {
            Ok(fresh) => {
                let tables = fresh.len();
                let generation = handle.swap_searcher(fresh);
                eprintln!("tsfm: reloaded catalog ({tables} tables, reload #{generation})");
                last = stat(manifest);
            }
            Err(e) => {
                eprintln!("tsfm: catalog reload failed (still serving old snapshot): {e}");
                // Leave `last` as-is so the next poll retries.
            }
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [catalog_dir] = args else {
        return Err(USAGE.to_string());
    };
    let cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let s = cat.stats();
    println!("catalog {catalog_dir}");
    println!("  tables        {}", s.tables);
    println!("  columns       {}", s.columns);
    println!("  rows          {}", s.rows);
    println!("  segment bytes {}", s.segment_bytes);
    println!("  minhash k     {}", s.minhash_k);
    println!("  index cached  {}", s.index_cached);
    Ok(())
}
