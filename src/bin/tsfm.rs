//! `tsfm` — the data-lake discovery CLI over the persistent catalog.
//!
//! ```text
//! tsfm ingest <catalog-dir> <csv-dir>                     sketch + store every *.csv
//! tsfm query  <catalog-dir> <query.csv> [--mode M] [--k N]  rank the corpus for a query table
//! tsfm stats  <catalog-dir>                               catalog summary
//! ```
//!
//! Modes: `join` (default), `union`, `subset`. Re-running `ingest` on an
//! unchanged directory is a no-op (content hashes match); the first query
//! after any change rebuilds the ANN indexes and caches them on disk.

use std::path::Path;
use std::process::ExitCode;
use tabsketchfm::store::{Catalog, QueryMode};
use tabsketchfm::table::csv;

const USAGE: &str = "usage:
  tsfm ingest <catalog-dir> <csv-dir>
  tsfm query  <catalog-dir> <query.csv> [--mode join|union|subset] [--k N]
  tsfm stats  <catalog-dir>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tsfm: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let [catalog_dir, csv_dir] = args else {
        return Err(USAGE.to_string());
    };
    if !Path::new(csv_dir).is_dir() {
        return Err(format!("{csv_dir}: not a directory"));
    }
    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let report = cat.ingest_dir(csv_dir).map_err(|e| format!("ingest {csv_dir}: {e}"))?;
    println!(
        "ingested {csv_dir}: {} added, {} updated, {} unchanged ({} sketched)",
        report.added,
        report.updated,
        report.unchanged,
        report.sketched()
    );
    for (file, err) in &report.failed {
        eprintln!("tsfm: skipped {file}: {err}");
    }
    println!("catalog {catalog_dir}: {} tables", cat.len());
    if report.failed.is_empty() {
        Ok(())
    } else {
        Err(format!("{} file(s) failed to ingest", report.failed.len()))
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (mut mode, mut k) = (QueryMode::Join, 10usize);
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value")?;
                mode = QueryMode::parse(v)
                    .ok_or_else(|| format!("unknown mode {v:?} (join|union|subset)"))?;
            }
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                k = v.parse().map_err(|_| format!("invalid k {v:?}"))?;
            }
            _ => positional.push(a.clone()),
        }
    }
    let [catalog_dir, query_csv] = &positional[..] else {
        return Err(USAGE.to_string());
    };

    let text = std::fs::read_to_string(query_csv).map_err(|e| format!("{query_csv}: {e}"))?;
    let id = Path::new(query_csv)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "query".into());
    let table = csv::table_from_csv(&id, &id, &text);

    let mut cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    if cat.is_empty() {
        return Err(format!("catalog {catalog_dir} is empty — run `tsfm ingest` first"));
    }
    let hits = cat.query(mode, &table, k).map_err(|e| format!("query: {e}"))?;
    // Queries may build + cache the index; persist the cache fingerprinting.
    cat.commit().map_err(|e| format!("commit: {e}"))?;

    println!(
        "{} results for {} ({} columns) over {} tables [mode={}]",
        hits.len(),
        id,
        table.num_cols(),
        cat.len(),
        mode.name()
    );
    for (rank, h) in hits.iter().enumerate() {
        match mode {
            QueryMode::Subset => {
                println!("{:>3}. {:<32} est. row jaccard {:.3}", rank + 1, h.table_id, h.score)
            }
            _ => println!(
                "{:>3}. {:<32} {} matching cols, distance sum {:.4}",
                rank + 1,
                h.table_id,
                h.matching_columns,
                h.score
            ),
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [catalog_dir] = args else {
        return Err(USAGE.to_string());
    };
    let cat = Catalog::open(catalog_dir).map_err(|e| format!("open {catalog_dir}: {e}"))?;
    let s = cat.stats();
    println!("catalog {catalog_dir}");
    println!("  tables        {}", s.tables);
    println!("  columns       {}", s.columns);
    println!("  rows          {}", s.rows);
    println!("  segment bytes {}", s.segment_bytes);
    println!("  minhash k     {}", s.minhash_k);
    println!("  index cached  {}", s.index_cached);
    Ok(())
}
