//! # tabsketchfm
//!
//! Umbrella crate for the Rust reproduction of *TabSketchFM: Sketch-based
//! Tabular Representation Learning for Data Discovery over Data Lakes*
//! (ICDE 2025). It re-exports every subsystem so examples and downstream
//! users need a single dependency:
//!
//! * [`table`] — table model, CSV, type inference ([`tsfm_table`])
//! * [`sketch`] — MinHash / numerical sketches / content snapshot
//! * [`tokenizer`] — WordPiece-style tokenizer
//! * [`nn`] — tensors, autograd, transformer layers, AdamW
//! * [`core`] — the TabSketchFM model, pretraining and fine-tuning
//! * [`lake`] — synthetic data-lake and benchmark generators
//! * [`search`] — indexes (brute-force, HNSW, LSH, Josie) and ranking
//! * [`store`] — persistent discovery catalog, typed discovery API
//!   (`DiscoveryRequest`/`DiscoveryResponse`, `Searcher`, `StoreError`),
//!   binary sketch/index formats, JSONL wire protocol
//! * [`baselines`] — the comparison systems from the paper's evaluation
//! * [`obs`] — std-only tracing spans, metrics registry, slowlog
//!   ([`tsfm_obs`]; instruments every layer above)
//!
//! The workspace also ships the `tsfm` CLI (`src/bin/tsfm.rs`), which
//! drives [`store`] over directories of real CSV files and serves
//! discovery traffic over TCP (`tsfm serve`).

#![forbid(unsafe_code)]

pub use tsfm_baselines as baselines;
pub use tsfm_core as core;
pub use tsfm_lake as lake;
pub use tsfm_nn as nn;
pub use tsfm_obs as obs;
pub use tsfm_search as search;
pub use tsfm_sketch as sketch;
pub use tsfm_store as store;
pub use tsfm_table as table;
pub use tsfm_tokenizer as tokenizer;
