//! Property tests for the CSV substrate: arbitrary cell content must
//! survive a write→parse round trip.

use proptest::prelude::*;
use tabsketchfm::table::csv::{parse_records, table_from_csv, table_to_csv};
use tabsketchfm::table::{Column, Table, Value};

proptest! {
    /// Arbitrary strings (commas, quotes, newlines, unicode) round-trip
    /// through CSV quoting.
    #[test]
    fn prop_csv_roundtrip(cells in proptest::collection::vec(".{0,20}", 1..12)) {
        let mut t = Table::new("t", "t");
        // Header must be a plain word; cells are arbitrary.
        t.push_column(Column::new(
            "data",
            cells.iter().map(|c| Value::Str(c.clone())).collect(),
        ));
        let text = table_to_csv(&t);
        let records = parse_records(&text);
        prop_assert_eq!(records.len(), cells.len() + 1, "one record per row + header");
        for (rec, cell) in records[1..].iter().zip(&cells) {
            prop_assert_eq!(&rec[0], cell);
        }
    }

    /// Numeric columns keep their values and types through round trips.
    #[test]
    fn prop_csv_numeric_roundtrip(vals in proptest::collection::vec(-1_000_000i64..1_000_000, 1..20)) {
        let mut t = Table::new("t", "t");
        t.push_column(Column::new("n", vals.iter().map(|&v| Value::Int(v)).collect()));
        let text = table_to_csv(&t);
        let back = table_from_csv("t", "t", &text);
        prop_assert_eq!(back.column(0).ty, tabsketchfm::table::ColType::Int);
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(back.cell(i, 0), &Value::Int(v));
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn prop_parser_total(text in ".{0,200}") {
        let _ = parse_records(&text);
        let _ = table_from_csv("t", "t", &text);
    }
}
