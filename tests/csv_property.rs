//! Property tests for the CSV substrate: arbitrary cell content must
//! survive a write→parse round trip.

use proptest::prelude::*;
use tabsketchfm::table::csv::{parse_records, table_from_csv, table_to_csv};
use tabsketchfm::table::{Column, Table, Value};

proptest! {
    /// Arbitrary strings (commas, quotes, newlines, unicode) round-trip
    /// through CSV quoting.
    #[test]
    fn prop_csv_roundtrip(cells in proptest::collection::vec(".{0,20}", 1..12)) {
        let mut t = Table::new("t", "t");
        // Header must be a plain word; cells are arbitrary.
        t.push_column(Column::new(
            "data",
            cells.iter().map(|c| Value::Str(c.clone())).collect(),
        ));
        let text = table_to_csv(&t);
        let records = parse_records(&text);
        prop_assert_eq!(records.len(), cells.len() + 1, "one record per row + header");
        for (rec, cell) in records[1..].iter().zip(&cells) {
            prop_assert_eq!(&rec[0], cell);
        }
    }

    /// Numeric columns keep their values and types through round trips.
    #[test]
    fn prop_csv_numeric_roundtrip(vals in proptest::collection::vec(-1_000_000i64..1_000_000, 1..20)) {
        let mut t = Table::new("t", "t");
        t.push_column(Column::new("n", vals.iter().map(|&v| Value::Int(v)).collect()));
        let text = table_to_csv(&t);
        let back = table_from_csv("t", "t", &text);
        prop_assert_eq!(back.column(0).ty, tabsketchfm::table::ColType::Int);
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(back.cell(i, 0), &Value::Int(v));
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn prop_parser_total(text in ".{0,200}") {
        let _ = parse_records(&text);
        let _ = table_from_csv("t", "t", &text);
    }
}

/// Deterministic edge cases backing the properties above: the degenerate
/// inputs a data lake actually contains (empty exports, ragged rows,
/// all-null columns) and the §III-B.4 first-ten-values inference rule.
mod edge_cases {
    use tabsketchfm::table::csv::{parse_records, table_from_csv, table_to_csv};
    use tabsketchfm::table::{ColType, Value};

    #[test]
    fn empty_file_gives_empty_table() {
        let t = table_from_csv("t", "t", "");
        assert_eq!(t.num_cols(), 0);
        assert_eq!(t.num_rows(), 0);
        assert!(parse_records("").is_empty());
    }

    #[test]
    fn header_only_gives_zero_row_string_columns() {
        let t = table_from_csv("t", "t", "a,b,c\n");
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.num_rows(), 0);
        for c in &t.columns {
            assert_eq!(c.ty, ColType::Str, "no data to probe defaults to string");
        }
        // A zero-row table still round-trips its header.
        let back = table_from_csv("t", "t", &table_to_csv(&t));
        assert_eq!(back.num_cols(), 3);
        assert_eq!(back.column(2).name, "c");
    }

    #[test]
    fn ragged_rows_pad_with_nulls_and_drop_extras() {
        // Row 1 is short (missing b), row 2 has a surplus field.
        let t = table_from_csv("t", "t", "a,b\n1\n2,3,4\n");
        assert_eq!(t.num_cols(), 2, "width comes from the header");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 0), &Value::Int(1));
        assert!(t.cell(0, 1).is_null(), "missing trailing field reads as null");
        assert_eq!(t.cell(1, 1), &Value::Int(3));
        assert_eq!(t.column(1).null_count(), 1);
    }

    #[test]
    fn all_null_column_is_string_typed_and_fully_null() {
        // Every null spelling the reader recognises, in one column.
        let t = table_from_csv("t", "t", "x,y\n,1\nnan,2\nNULL,3\nn/a,4\n-,5\n");
        assert_eq!(t.column(0).ty, ColType::Str, "no non-null cell to probe");
        assert_eq!(t.column(0).null_count(), 5);
        assert!(t.column(0).values.iter().all(Value::is_null));
        // The neighbouring column is unaffected.
        assert_eq!(t.column(1).ty, ColType::Int);
        assert_eq!(t.column(1).null_count(), 0);
    }

    #[test]
    fn date_and_number_inference() {
        let csv = "iso,slash,stamp,int,float,mixed,text\n\
                   2001-01-31,31/12/2001,2001-01-01T12:30:00Z,42,0.5,1,alpha\n\
                   1999-06-30,01/02/2002,1999-06-30 08:00:15,-7,-2.25,2.5,beta\n";
        let t = table_from_csv("t", "t", csv);
        assert_eq!(t.column_by_name("iso").unwrap().ty, ColType::Date);
        assert_eq!(t.column_by_name("slash").unwrap().ty, ColType::Date);
        assert_eq!(t.column_by_name("stamp").unwrap().ty, ColType::Date);
        assert_eq!(t.column_by_name("int").unwrap().ty, ColType::Int);
        assert_eq!(t.column_by_name("float").unwrap().ty, ColType::Float);
        // An integer-looking cell above a decimal one demotes the column to
        // float (the date → int → float → str fallback order).
        assert_eq!(t.column_by_name("mixed").unwrap().ty, ColType::Float);
        assert_eq!(t.column_by_name("text").unwrap().ty, ColType::Str);
        assert!(matches!(t.cell(0, 0), Value::Date(_)));
        assert_eq!(t.cell(1, 3), &Value::Int(-7));
        assert_eq!(t.cell(1, 4), &Value::Float(-2.25));
    }

    #[test]
    fn inference_probes_only_first_ten_non_null_values() {
        // Ten clean integers followed by a word: the paper's rule stops
        // probing after ten values, so the column stays Int and the word
        // falls back to a string cell rather than retyping the column.
        let mut csv = String::from("x\n");
        for i in 0..10 {
            csv.push_str(&format!("{i}\n"));
        }
        csv.push_str("oops\n");
        let t = table_from_csv("t", "t", &csv);
        assert_eq!(t.column(0).ty, ColType::Int);
        assert_eq!(t.cell(10, 0), &Value::Str("oops".into()));
        // Nulls do not consume probe slots: ten nulls then a word is Str.
        let t2 = table_from_csv("t", "t", &format!("x\n{}oops\n", "\n".repeat(10)));
        assert_eq!(t2.column(0).ty, ColType::Str);
    }

    #[test]
    fn quoted_fields_survive_typed_round_trip() {
        let src = "k,v\n\"1,234\",\"line\nbreak\"\n2,\"say \"\"hi\"\"\"\n";
        let t = table_from_csv("t", "t", src);
        // "1,234" is a thousands-separated integer per the value parser.
        assert_eq!(t.column(0).ty, ColType::Int);
        assert_eq!(t.cell(0, 0), &Value::Int(1234));
        let back = table_from_csv("t", "t", &table_to_csv(&t));
        assert_eq!(back.cell(0, 1), &Value::Str("line\nbreak".into()));
        assert_eq!(back.cell(1, 1), &Value::Str("say \"hi\"".into()));
    }
}
