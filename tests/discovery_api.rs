//! Acceptance tests for the typed discovery API (ISSUE 3): the
//! `Searcher` snapshot must serve ≥ 8 concurrent threads with results
//! identical to the serial path, the `tsfm serve` JSONL-over-TCP loop
//! must answer queries and typed errors on an ephemeral port, and the
//! CLI must share the serve loop's JSON serializer (`--json`) and reject
//! `--k 0` with a clear non-zero exit.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use tabsketchfm::lake::{gen_join_search, JoinSearchConfig, World, WorldConfig};
use tabsketchfm::store::{
    wire, Catalog, DiscoveryRequest, DiscoveryResponse, QueryMode, StoreError,
};
use tabsketchfm::table::csv;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_dapi_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a benchmark's tables as `<id>.csv` files; returns the directory.
fn write_lake_csvs(tag: &str) -> (PathBuf, Vec<String>) {
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(
        &world,
        &JoinSearchConfig {
            groups: 3,
            tables_per_group: 4,
            low_overlap_per_group: 1,
            distractors: 6,
            seed: 33,
        },
    );
    let dir = tmp_dir(tag);
    let mut ids = Vec::new();
    for t in &bench.tables {
        fs::write(dir.join(format!("{}.csv", t.id)), csv::table_to_csv(t)).unwrap();
        ids.push(t.id.clone());
    }
    (dir, ids)
}

/// The concurrency acceptance criterion: ≥ 8 threads hammering one shared
/// `Searcher` get results identical to the serial path, across all modes.
#[test]
fn eight_threads_match_serial_results() {
    let (csv_dir, ids) = write_lake_csvs("conc");
    let cat_dir = tmp_dir("conc_cat");
    let mut cat = Catalog::open(&cat_dir).unwrap();
    cat.ingest_dir(&csv_dir).unwrap();
    let searcher = cat.searcher().unwrap();

    // Serial ground truth: every table in the corpus queries it, 3 modes.
    let requests: Vec<DiscoveryRequest> = QueryMode::ALL
        .into_iter()
        .map(|m| DiscoveryRequest::builder(m).k(5).build().unwrap())
        .collect();
    let serial: Vec<DiscoveryResponse> = ids
        .iter()
        .flat_map(|id| requests.iter().map(move |r| (id, r)))
        .map(|(id, r)| searcher.search_id(id, r).unwrap())
        .collect();

    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                // A clone per worker, as a serve loop would hand out.
                let worker = searcher.clone();
                let (ids, requests, serial) = (&ids, &requests, &serial);
                scope.spawn(move || {
                    for (i, (id, r)) in ids
                        .iter()
                        .flat_map(|id| requests.iter().map(move |r| (id, r)))
                        .enumerate()
                    {
                        let got = worker.search_id(id, r).unwrap();
                        assert_eq!(got.hits, serial[i].hits, "thread diverged on {id}");
                        assert_eq!(got.corpus_size, serial[i].corpus_size);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    // And the parallel batch fan-out agrees with the same ground truth.
    let sketches: Vec<_> =
        ids.iter().map(|id| searcher.sketch_of(id).unwrap().as_ref().clone()).collect();
    for r in &requests {
        // Auto-sized and forced-8-thread fan-outs (the latter exercises
        // the scoped-thread path even on single-core hosts).
        let auto = searcher.search_batch(&sketches, r).unwrap();
        let forced = searcher.engine().search_batch_with_threads(&sketches, r, 8).unwrap();
        for ((id, a), f) in ids.iter().zip(&auto).zip(&forced) {
            let serial = searcher.search_id(id, r).unwrap().hits;
            assert_eq!(a.hits, serial, "auto batch diverged on {id}");
            assert_eq!(f.hits, serial, "8-thread batch diverged on {id}");
        }
    }
}

/// Kill the serve child even when an assertion panics mid-test.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(cat_dir: &std::path::Path) -> (ServerGuard, String) {
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let mut child = Command::new(bin)
        .args(["serve", cat_dir.to_str().unwrap(), "--port", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsfm serve");
    // First stdout line announces the ephemeral address.
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap()).read_line(&mut line).unwrap();
    let addr = line
        .rsplit(" on ")
        .next()
        .map(str::trim)
        .unwrap_or_default()
        .to_string();
    assert!(line.contains("tsfm: serving"), "unexpected banner: {line:?}");
    (ServerGuard(child), addr)
}

/// The serve-loop acceptance criterion: a real `tsfm serve` process on an
/// ephemeral port answers inline-CSV queries, stored-id queries with
/// explanations, and typed client errors — all over one connection.
#[test]
fn serve_loop_answers_queries_and_typed_errors() {
    let cat_dir = tmp_dir("serve_cat");
    {
        let mut cat = Catalog::open(&cat_dir).unwrap();
        cat.ingest_dir("tests/fixtures/lake").unwrap();
        assert_eq!(cat.len(), 3);
    }
    let (_guard, addr) = spawn_server(&cat_dir);

    let stream = TcpStream::connect(&addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |req: String| -> wire::Json {
        writeln!(writer, "{req}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        wire::parse_json(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    };

    // 1. Inline CSV query: the fixture cities table must hit city_areas.
    let cities = fs::read_to_string("tests/fixtures/lake/cities.csv").unwrap();
    let reply = roundtrip(format!(
        "{{\"mode\":\"join\",\"k\":3,\"query_id\":\"q\",\"csv\":\"{}\"}}",
        wire::escape_json(&cities)
    ));
    let wire::Json::Arr(hits) = reply.get("hits").expect("hits array") else {
        panic!("{reply:?}")
    };
    assert!(!hits.is_empty(), "expected ranked hits: {reply:?}");
    let tables: Vec<&str> = hits.iter().filter_map(|h| h.get("table")?.as_str()).collect();
    assert!(tables.contains(&"city_areas"), "joinable table found: {tables:?}");
    assert_eq!(reply.get("query").unwrap().as_str(), Some("q"));

    // 2. Stored-id query with explanations.
    let reply = roundtrip(r#"{"mode":"union","k":2,"id":"cities","explain":true}"#.into());
    assert_eq!(reply.get("query").unwrap().as_str(), Some("cities"));
    let wire::Json::Arr(ex) = reply.get("explanations").expect("explanations present") else {
        panic!("{reply:?}")
    };
    assert!(!ex.is_empty());
    assert!(ex[0].get("matches").is_some());

    // 3. Typed client errors, each answered on the same connection.
    for (req, kind) in [
        (r#"{"mode":"fuzzy","csv":"a\n1\n"}"#, "invalid_request"),
        (r#"{"mode":"join","k":0,"csv":"a\n1\n"}"#, "invalid_request"),
        (r#"{"mode":"join","id":"no_such_table"}"#, "unknown_table"),
        ("definitely not json", "invalid_request"),
    ] {
        let reply = roundtrip(req.to_string());
        let err = reply.get("error").unwrap_or_else(|| panic!("{req} should fail: {reply:?}"));
        assert_eq!(err.get("kind").unwrap().as_str(), Some(kind), "{req}");
        assert_eq!(reply.get("client").unwrap().as_bool(), Some(true), "{req}");
    }

    // 4. The connection still works after the errors.
    let reply = roundtrip(r#"{"mode":"subset","id":"animals"}"#.into());
    assert!(reply.get("hits").is_some());

    // 5. Concurrent connections: each gets its own worker thread over the
    // shared snapshot and sees the same ranking.
    let expected = tables;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            let cities = cities.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                let stream = TcpStream::connect(&addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                writeln!(
                    writer,
                    "{{\"mode\":\"join\",\"k\":3,\"query_id\":\"q\",\"csv\":\"{}\"}}",
                    wire::escape_json(&cities)
                )
                .unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let reply = wire::parse_json(line.trim()).unwrap();
                let wire::Json::Arr(hits) = reply.get("hits").unwrap() else { panic!() };
                let tables: Vec<&str> =
                    hits.iter().filter_map(|h| h.get("table")?.as_str()).collect();
                assert_eq!(tables, expected, "concurrent connection diverged");
            });
        }
    });
}

/// `tsfm query --json` emits one JSON object per hit through the same
/// serializer the serve loop uses, and `--k 0` / bad modes exit non-zero
/// with clear messages.
#[test]
fn cli_json_output_and_request_validation() {
    let cat_dir = tmp_dir("cli_cat");
    {
        let mut cat = Catalog::open(&cat_dir).unwrap();
        cat.ingest_dir("tests/fixtures/lake").unwrap();
    }
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let cat_s = cat_dir.to_str().unwrap();
    let query = "tests/fixtures/lake/cities.csv";

    let out = Command::new(bin)
        .args(["query", cat_s, query, "--mode", "join", "--k", "3", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(!lines.is_empty(), "expected one JSON line per hit");
    for (i, line) in lines.iter().enumerate() {
        let v = wire::parse_json(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        assert_eq!(v.get("rank").unwrap().as_f64(), Some((i + 1) as f64));
        assert!(v.get("table").unwrap().as_str().is_some());
        assert!(v.get("score").is_some());
    }

    // --k 0 must exit non-zero with the engine's own message.
    let out = Command::new(bin).args(["query", cat_s, query, "--k", "0"]).output().unwrap();
    assert!(!out.status.success(), "--k 0 must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("k must be >= 1"), "clear message, got: {stderr}");

    // Unknown mode: the FromStr error lists the valid modes.
    let out = Command::new(bin).args(["query", cat_s, query, "--mode", "zigzag"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for mode in ["join", "union", "subset"] {
        assert!(stderr.contains(mode), "valid modes listed: {stderr}");
    }

    // --explain prints per-column provenance in the human format.
    let out = Command::new(bin)
        .args(["query", cat_s, query, "--mode", "join", "--k", "3", "--explain"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("→"), "explanation arrows in output: {stdout}");

    // --json --explain upgrades to the full serve-shaped response object
    // so the explanations are not silently dropped.
    let out = Command::new(bin)
        .args(["query", cat_s, query, "--mode", "join", "--k", "3", "--json", "--explain"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = wire::parse_json(stdout.trim()).expect("one full response object");
    assert!(matches!(v.get("explanations"), Some(wire::Json::Arr(ex)) if !ex.is_empty()));
}

/// The error taxonomy is visible end to end through the facade re-exports.
#[test]
fn error_taxonomy_round_trips_the_facade() {
    let cat_dir = tmp_dir("tax_cat");
    let mut cat = Catalog::open(&cat_dir).unwrap();
    // Empty catalog → EmptyIndex from a snapshot query.
    let searcher = cat.searcher().unwrap();
    let req = DiscoveryRequest::builder(QueryMode::Join).build().unwrap();
    let t = csv::table_from_csv("q", "q", "a\n1\n");
    assert!(matches!(searcher.search_table(&t, &req), Err(StoreError::EmptyIndex)));

    // Corrupt segment → Corrupt{format: TSFMSEG1}.
    cat.add_table(&t, 1).unwrap();
    cat.commit().unwrap();
    let seg_dir = cat_dir.join("segments");
    let seg = fs::read_dir(&seg_dir).unwrap().next().unwrap().unwrap().path();
    let mut bytes = fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes.truncate(mid);
    fs::write(&seg, bytes).unwrap();
    match cat.record("q") {
        Err(StoreError::Corrupt { format, .. }) => assert_eq!(format, "TSFMSEG1"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Io surfaces missing files distinctly from corruption.
    fs::remove_file(&seg).unwrap();
    assert!(matches!(cat.record("q"), Err(StoreError::Io(_))));
}

/// The serve process must start even before any index cache exists and
/// keep the query table excluded from its own results by default; the
/// sibling `exclude_self:false` must include it.
#[test]
fn serve_exclude_self_toggle() {
    let cat_dir = tmp_dir("self_cat");
    {
        let mut cat = Catalog::open(&cat_dir).unwrap();
        cat.ingest_dir("tests/fixtures/lake").unwrap();
    }
    let (_guard, addr) = spawn_server(&cat_dir);
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut ask = |req: &str| -> Vec<String> {
        writeln!(writer, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = wire::parse_json(line.trim()).unwrap();
        let wire::Json::Arr(hits) = v.get("hits").cloned().unwrap_or(wire::Json::Arr(vec![]))
        else {
            return vec![];
        };
        hits.iter().filter_map(|h| Some(h.get("table")?.as_str()?.to_string())).collect()
    };
    let excluded = ask(r#"{"mode":"join","k":5,"id":"cities"}"#);
    assert!(!excluded.contains(&"cities".to_string()), "{excluded:?}");
    let included = ask(r#"{"mode":"join","k":5,"id":"cities","exclude_self":false}"#);
    assert_eq!(included.first().map(String::as_str), Some("cities"), "{included:?}");
    // EOF: shutting down the write half ends the connection cleanly.
    // (A plain drop would not — the BufReader's try_clone keeps the fd
    // open, so the server would never see EOF.)
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty());
}
