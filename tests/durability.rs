//! Durability acceptance tests (ISSUE 9): the checksummed v2 store must
//! keep reading stores written by the pre-checksum (v1) code, `tsfm fsck`
//! must detect and repair real corruption through the CLI, and the
//! corruption metrics must surface where operators look for them.
//!
//! `tests/fixtures/v1_store/` is a catalog committed by the v1 binary
//! (magic + `version=1` headers, no CRC): three tables ingested from
//! `tests/fixtures/lake/`. It is checked in as immutable bytes — every
//! test copies it to a temp dir first.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use tabsketchfm::store::fsck::{fsck, IndexCacheState};
use tabsketchfm::store::{Catalog, DiscoveryRequest, QueryMode};
use tabsketchfm::table::csv;

const V1_FIXTURE: &str = "tests/fixtures/v1_store";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_durability_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recursive copy of the committed fixture into a scratch dir.
fn copy_fixture(tag: &str) -> PathBuf {
    let dst = tmp_dir(tag);
    fs::copy(Path::new(V1_FIXTURE).join("catalog.manifest"), dst.join("catalog.manifest"))
        .unwrap();
    fs::copy(Path::new(V1_FIXTURE).join("index.cache"), dst.join("index.cache")).unwrap();
    let seg_dst = dst.join("segments");
    fs::create_dir_all(&seg_dst).unwrap();
    for e in fs::read_dir(Path::new(V1_FIXTURE).join("segments")).unwrap() {
        let e = e.unwrap();
        fs::copy(e.path(), seg_dst.join(e.file_name())).unwrap();
    }
    dst
}

/// Frame version field of a store file: bytes 8..12, little-endian.
fn frame_version(path: &Path) -> u32 {
    let bytes = fs::read(path).unwrap();
    u32::from_le_bytes(bytes[8..12].try_into().unwrap())
}

/// The known-good join ranking for `lake/cities.csv` against the fixture
/// (recorded when the fixture was committed by the v1 binary).
fn assert_known_good_ranking(dir: &Path) {
    let text = fs::read_to_string("tests/fixtures/lake/cities.csv").unwrap();
    let table = csv::table_from_csv("cities", "cities", &text);
    let mut cat = Catalog::open(dir).unwrap();
    let req = DiscoveryRequest::builder(QueryMode::Join).k(2).build().unwrap();
    let resp = cat.searcher().unwrap().search_table(&table, &req).unwrap();
    let ids: Vec<&str> = resp.hits.iter().map(|h| h.table_id.as_str()).collect();
    assert_eq!(ids, ["city_areas", "animals"], "v1 data must rank identically");
    assert!((resp.hits[0].score - 1.9163).abs() < 5e-3, "score {}", resp.hits[0].score);
    assert!((resp.hits[1].score - 2.2095).abs() < 5e-3, "score {}", resp.hits[1].score);
}

#[test]
fn v1_store_reads_verifies_and_migrates_to_v2() {
    let dir = copy_fixture("migrate");

    // Every file in the fixture is a v1 frame.
    assert_eq!(frame_version(&dir.join("catalog.manifest")), 1);
    assert_eq!(frame_version(&dir.join("index.cache")), 1);

    // fsck verifies a pure-v1 store clean and reports the migration debt.
    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{}", report.to_json());
    assert_eq!((report.tables, report.segments_ok, report.v1_segments), (3, 3, 3));
    assert_eq!(report.index_cache, IndexCacheState::Valid);

    // Queries over v1 bytes return the recorded ranking.
    assert_known_good_ranking(&dir);

    // Any mutation commits v2 frames: drop one table, re-add another with
    // fresh content. The manifest and the rewritten segment upgrade; the
    // untouched segment legitimately stays v1.
    let mut cat = Catalog::open(&dir).unwrap();
    assert!(cat.remove("animals").unwrap());
    let t = csv::table_from_csv("extra", "extra", "name,area\nDonaustadt,22.4\nLeopoldstadt,19.2\n");
    cat.add_table(&t, 424_242).unwrap();
    cat.searcher().unwrap(); // rebuild + rewrite the index cache
    cat.commit().unwrap();
    drop(cat);

    assert_eq!(frame_version(&dir.join("catalog.manifest")), 2, "manifest upgraded");
    assert_eq!(frame_version(&dir.join("index.cache")), 2, "index cache upgraded");

    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{}", report.to_json());
    assert_eq!(report.tables, 3, "cities, city_areas, extra");
    assert_eq!(report.v1_segments, 2, "untouched segments stay v1 until rewritten");

    // The mixed v1/v2 store still opens and answers.
    let mut cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.len(), 3);
    assert!(cat.record("extra").unwrap().content_hash == 424_242);
    assert!(cat.searcher().unwrap().sketch_of("cities").is_ok());
}

#[test]
fn fsck_cli_detects_and_repairs_real_corruption() {
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let dir = copy_fixture("cli");
    let dir_s = dir.to_str().unwrap();

    // Healthy store: exit 0, healthy:true in the JSON report.
    let out = Command::new(bin).args(["fsck", dir_s]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("\"healthy\":true"), "{stdout}");

    // Flip one byte in a segment payload.
    let victim = dir.join("segments/city_areas-91bd1717-fa0b8ca493744641.seg");
    let mut bytes = fs::read(&victim).unwrap();
    let at = bytes.len() - 4;
    bytes[at] ^= 0x08;
    fs::write(&victim, &bytes).unwrap();

    // v1 frames carry no CRC, so a payload flip in a v1 segment can only
    // be caught structurally — force the issue by truncating too.
    bytes.truncate(bytes.len() - 2);
    fs::write(&victim, &bytes).unwrap();

    // Detection: exit 1, the problem names the file and the table.
    let out = Command::new(bin).args(["fsck", dir_s]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("\"healthy\":false"), "{stdout}");
    assert!(stdout.contains("corrupt_segment"), "{stdout}");
    assert!(stdout.contains("city_areas"), "{stdout}");

    // Repair: exit 0, the bad segment quarantined, the store green after.
    let out = Command::new(bin).args(["fsck", dir_s, "--repair"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("\"repair\""), "{stdout}");
    assert!(stdout.contains("\"dropped_tables\":[\"city_areas\"]"), "{stdout}");
    assert!(dir.join("quarantine").join(victim.file_name().unwrap()).exists());

    let out = Command::new(bin).args(["fsck", dir_s]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("\"healthy\":true"), "{stdout}");
    assert!(stdout.contains("\"tables\":2"), "{stdout}");

    // The degraded store still answers queries for the surviving tables.
    let query = Path::new("tests/fixtures/lake/cities.csv").to_str().unwrap().to_string();
    let out = Command::new(bin).args(["query", dir_s, &query, "--k", "1"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("animals"), "top hit among survivors: {stdout}");

    // Usage errors exit 2, distinct from damage (1).
    let out = Command::new(bin).args(["fsck"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let missing = dir.join("does_not_exist");
    let out = Command::new(bin).args(["fsck", missing.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "not-a-catalog is environmental, not damage");
}

#[test]
fn corruption_metric_counts_checked_read_failures() {
    let dir = copy_fixture("metric");
    // Upgrade to v2 first so the flip is caught by CRC, then corrupt.
    let mut cat = Catalog::open(&dir).unwrap();
    let t = csv::table_from_csv("probe", "probe", "a,b\n1,2\n3,4\n");
    cat.add_table(&t, 7).unwrap();
    cat.commit().unwrap();
    let seg = cat.entry("probe").unwrap().segment.clone();
    drop(cat);
    let victim = dir.join("segments").join(seg);
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&victim, &bytes).unwrap();

    let before = counter_value("tsfm_store_corruptions_detected_total");
    let cat = Catalog::open(&dir).unwrap();
    let err = cat.record("probe").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("corrupt"), "{msg}");
    assert!(msg.contains("offset"), "attribution must name the offset: {msg}");
    let after = counter_value("tsfm_store_corruptions_detected_total");
    assert!(after > before, "counter must advance: {before} -> {after}");
}

/// Read a counter's current value out of the global registry's
/// Prometheus text.
fn counter_value(name: &str) -> u64 {
    tsfm_obs::metrics::global()
        .prometheus_text()
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next().and_then(|v| v.parse().ok()))
        .unwrap_or(0)
}
