//! Integration tests spanning crates: lake → sketch → tokenizer → model →
//! fine-tune → search, plus checkpoint persistence of a whole model.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tabsketchfm::core::{
    column_embeddings, encode_table, finetune, pair_sequence, single_sequence, CrossEncoder,
    FinetuneConfig, Label, ModelConfig, PairDataset, SketchToggle, TabSketchFM,
};
use tabsketchfm::lake::{gen_spider_join, gen_union_search, UnionSearchConfig, World, WorldConfig};
use tabsketchfm::search::{evaluate_search, ranked_table_ids, BruteForceIndex, ColumnHit, Metric};
use tabsketchfm::sketch::{MinHasher, SketchConfig, TableSketch};
use tabsketchfm::tokenizer::{Vocab, VocabBuilder};

fn metadata_vocab<'a, I: Iterator<Item = &'a tabsketchfm::table::Table>>(tables: I) -> Vocab {
    let mut vb = VocabBuilder::new();
    for t in tables {
        vb.add_text(&t.description);
        for c in &t.columns {
            vb.add_text(&c.name);
        }
    }
    vb.build(1, 4000)
}

#[test]
fn lake_to_finetuned_cross_encoder() {
    let world = World::generate(WorldConfig::default());
    let task = gen_spider_join(&world, 60, 3);
    let vocab = metadata_vocab(task.tables.iter());
    let cfg = ModelConfig::tiny(vocab.len());
    let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
    let hasher = MinHasher::new(scfg.minhash_k, scfg.seed);
    let sketches: Vec<TableSketch> = task
        .tables
        .iter()
        .map(|t| TableSketch::build_with_hasher(t, &hasher, scfg.max_rows))
        .collect();

    let encode = |idxs: &[usize]| -> PairDataset {
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for &i in idxs {
            let (a, b, l) = &task.pairs[i];
            let ea = encode_table(&sketches[*a], &vocab, &cfg.input, SketchToggle::ALL);
            let eb = encode_table(&sketches[*b], &vocab, &cfg.input, SketchToggle::ALL);
            seqs.push(pair_sequence(&ea, &eb, &cfg.input));
            labels.push(l.clone());
        }
        PairDataset { seqs, labels }
    };
    let train = encode(&task.splits.train);
    let valid = encode(&task.splits.valid);
    let test = encode(&task.splits.test);

    let mut rng = StdRng::seed_from_u64(0);
    let model = TabSketchFM::new(cfg, &mut rng);
    let mut ce = CrossEncoder::new(model, task.task, &mut rng);
    let report = finetune(
        &mut ce,
        &train,
        &valid,
        &FinetuneConfig { epochs: 12, lr: 2e-3, patience: 12, ..Default::default() },
    );
    assert!(
        report.train_losses.last().unwrap() < report.train_losses.first().unwrap(),
        "training must reduce loss: {:?}",
        report.train_losses
    );

    // Better than chance on test (weighted F1 of argmax predictions).
    let preds = ce.predict(&test.seqs, 8);
    let correct = preds
        .iter()
        .zip(&test.labels)
        .filter(|(p, l)| {
            matches!(l, Label::Binary(b) if *b == (p[1] > p[0]))
        })
        .count();
    assert!(
        correct * 2 > test.labels.len(),
        "accuracy {correct}/{} not better than chance",
        test.labels.len()
    );
}

#[test]
fn checkpoint_roundtrip_preserves_model_outputs() {
    let world = World::generate(WorldConfig::default());
    let task = gen_spider_join(&world, 10, 4);
    let vocab = metadata_vocab(task.tables.iter());
    let cfg = ModelConfig::tiny(vocab.len());
    let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
    let sketch = TableSketch::build(&task.tables[0], &scfg);
    let enc = encode_table(&sketch, &vocab, &cfg.input, SketchToggle::ALL);
    let seq = single_sequence(&enc, &cfg.input);

    let mut rng = StdRng::seed_from_u64(5);
    let model = TabSketchFM::new(cfg.clone(), &mut rng);
    let before = column_embeddings(&model, &seq);

    let dir = std::env::temp_dir().join("tsfm_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    tabsketchfm::nn::io::save_params(&model.store, &path).unwrap();

    let mut rng2 = StdRng::seed_from_u64(999); // different init
    let mut model2 = TabSketchFM::new(cfg, &mut rng2);
    let loaded = tabsketchfm::nn::io::load_params(&mut model2.store, &path).unwrap();
    assert_eq!(loaded, model2.store.len());
    let after = column_embeddings(&model2, &seq);
    for ((_, a), (_, b)) in before.iter().zip(&after) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-6, "checkpoint must restore outputs exactly");
        }
    }
}

#[test]
fn sbert_fig6_union_search_beats_random() {
    let world = World::generate(WorldConfig::default());
    let bench = gen_union_search(
        &world,
        "it",
        &UnionSearchConfig { clusters: 4, cluster_size: 6, distractors: 16, seed: 9 },
    );
    let enc = tabsketchfm::baselines::SentenceEncoder::default();
    let mut vecs = Vec::new();
    let mut owner = Vec::new();
    for (ti, t) in bench.tables.iter().enumerate() {
        for c in &t.columns {
            vecs.push(enc.encode_column(c, 100));
            owner.push(ti);
        }
    }
    let mut index = BruteForceIndex::new(enc.dim, Metric::Cosine);
    for v in &vecs {
        index.add(v);
    }
    let k = 5;
    let retrieved: Vec<Vec<usize>> = bench
        .queries
        .iter()
        .map(|&q| {
            let per_col: Vec<Vec<ColumnHit>> = (0..vecs.len())
                .filter(|&ci| owner[ci] == q)
                .map(|ci| {
                    index
                        .search(&vecs[ci], k * 3)
                        .into_iter()
                        .map(|(id, d)| ColumnHit { table: owner[id], column: id, distance: d })
                        .collect()
                })
                .collect();
            let mut ids = ranked_table_ids(&per_col, Some(q));
            ids.truncate(k);
            ids
        })
        .collect();
    let s = evaluate_search(&retrieved, &bench.gold, k);
    // Random retrieval of 5 among 40 tables with 5 gold ⇒ F1 ≈ 0.125.
    assert!(s.mean_f1 > 0.4, "Fig-6 + SBERT should beat random easily: {s:?}");
}

#[test]
fn ablation_toggles_change_sequences_not_shapes() {
    let world = World::generate(WorldConfig::default());
    let task = gen_spider_join(&world, 4, 6);
    let vocab = metadata_vocab(task.tables.iter());
    let cfg = ModelConfig::tiny(vocab.len());
    let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
    let sketch = TableSketch::build(&task.tables[0], &scfg);
    let all = encode_table(&sketch, &vocab, &cfg.input, SketchToggle::ALL);
    for toggle in [
        SketchToggle::ONLY_MINHASH,
        SketchToggle::ONLY_NUMERIC,
        SketchToggle::ONLY_CONTENT,
        SketchToggle::NO_MINHASH,
    ] {
        let e = encode_table(&sketch, &vocab, &cfg.input, toggle);
        assert_eq!(e.ids, all.ids, "tokens identical across ablations");
        assert_eq!(e.minhash.len(), all.minhash.len(), "feature width fixed");
        assert_eq!(e.numeric.len(), all.numeric.len());
    }
}
