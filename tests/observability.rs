//! End-to-end acceptance for the observability surface (ISSUE 7): a live
//! `tsfm serve` process must answer the `metrics` verb with parseable
//! Prometheus text and the `slowlog` verb with per-stage breakdowns; a
//! `profile: true` query must return stage timings that sum to within 10%
//! of `micros`; and `tsfm query --trace` must write a Chrome
//! `trace_event` JSON file that the store's own parser validates.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use tabsketchfm::store::{wire, Catalog};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_obs_e2e_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_catalog(tag: &str) -> PathBuf {
    let cat_dir = tmp_dir(tag);
    let mut cat = Catalog::open(&cat_dir).unwrap();
    cat.ingest_dir("tests/fixtures/lake").unwrap();
    assert_eq!(cat.len(), 3);
    cat_dir
}

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_serve(cat_dir: &Path) -> (ServerGuard, String) {
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let mut child = Command::new(bin)
        .args(["serve", cat_dir.to_str().unwrap(), "--port", "0", "--reload-ms", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tsfm serve");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap()).read_line(&mut line).unwrap();
    assert!(line.contains("tsfm: serving"), "unexpected banner: {line:?}");
    let addr = line.rsplit(" on ").next().map(str::trim).unwrap_or_default().to_string();
    (ServerGuard(child), addr)
}

fn roundtrip(w: &mut TcpStream, r: &mut BufReader<TcpStream>, req: &str) -> wire::Json {
    writeln!(w, "{req}").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    wire::parse_json(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

/// Stage entries of a `profile`/`stages` array as (name, µs) pairs.
fn stage_pairs(v: &wire::Json) -> Vec<(String, u64)> {
    let wire::Json::Arr(items) = v else { panic!("stages not an array: {v:?}") };
    items
        .iter()
        .map(|pair| {
            let wire::Json::Arr(kv) = pair else { panic!("stage not a pair: {pair:?}") };
            let name = kv[0].as_str().expect("stage name").to_string();
            let us = kv[1].as_f64().expect("stage micros") as u64;
            (name, us)
        })
        .collect()
}

#[test]
fn live_server_answers_metrics_slowlog_and_profile() {
    let cat_dir = fixture_catalog("serve");
    let (_guard, addr) = spawn_serve(&cat_dir);
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // A profiled query: stage timings must exist and sum to within 10%
    // of the end-to-end micros (the engine closes the gap with an
    // "other" stage, so in practice they match exactly).
    let query = "{\"mode\":\"join\",\"k\":3,\"id\":\"cities\",\"profile\":true}";
    let resp = roundtrip(&mut writer, &mut reader, query);
    let micros = resp.get("micros").and_then(wire::Json::as_f64).expect("micros") as u64;
    let stages = stage_pairs(resp.get("profile").expect("profile requested but missing"));
    assert!(!stages.is_empty());
    assert_eq!(stages.last().unwrap().0, "other", "remainder stage closes the budget");
    let sum: u64 = stages.iter().map(|(_, us)| *us).sum();
    let tolerance = (micros / 10).max(1);
    assert!(
        sum.abs_diff(micros) <= tolerance,
        "stage sum {sum}µs vs micros {micros}µs drifts past 10%: {stages:?}"
    );

    // An unprofiled query must not carry the field.
    let resp = roundtrip(&mut writer, &mut reader, "{\"mode\":\"join\",\"k\":3,\"id\":\"cities\"}");
    assert!(resp.get("profile").is_none(), "profile must be opt-in");

    // The metrics verb: parseable Prometheus text with the request
    // counter present (2 queries + the metrics request itself).
    let resp = roundtrip(&mut writer, &mut reader, "{\"op\":\"metrics\"}");
    let text = resp.get("metrics").and_then(|m| m.as_str()).expect("metrics text");
    assert!(text.contains("# TYPE tsfm_serve_requests_total counter"));
    assert!(text.contains("tsfm_serve_requests_total{outcome=\"ok\"} 3"));
    assert!(text.contains("tsfm_serve_tables 3"));
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "unparseable exposition line {line:?}");
    }

    // The slowlog verb: every entry carries a stage breakdown (serve
    // forces profiling internally), sorted slowest-first.
    let resp = roundtrip(&mut writer, &mut reader, "{\"op\":\"slowlog\"}");
    let wire::Json::Arr(entries) = resp.get("slowlog").expect("slowlog array") else {
        panic!("slowlog not an array");
    };
    assert_eq!(entries.len(), 2, "both queries logged");
    let mut last = u64::MAX;
    for e in entries {
        let us = e.get("micros").and_then(wire::Json::as_f64).expect("entry micros") as u64;
        assert!(us <= last, "slowlog must be sorted slowest-first");
        last = us;
        assert!(!stage_pairs(e.get("stages").expect("entry stages")).is_empty());
    }
}

#[test]
fn query_trace_writes_valid_chrome_trace_json() {
    let cat_dir = fixture_catalog("trace");
    let trace_path = cat_dir.join("trace.json");
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let out = Command::new(bin)
        .args([
            "query",
            cat_dir.to_str().unwrap(),
            "tests/fixtures/lake/cities.csv",
            "--k",
            "2",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("run tsfm query --trace");
    assert!(out.status.success(), "tsfm query failed: {}", String::from_utf8_lossy(&out.stderr));

    // The store's own JSON parser must accept the trace, and the Chrome
    // trace_event shape must be intact: complete events with name/ts/dur.
    let text = fs::read_to_string(&trace_path).unwrap();
    let trace = wire::parse_json(&text).expect("trace file is valid JSON");
    let wire::Json::Arr(events) = trace.get("traceEvents").expect("traceEvents") else {
        panic!("traceEvents not an array");
    };
    assert!(!events.is_empty(), "a query must record spans");
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"), "complete events only");
        assert_eq!(e.get("cat").and_then(|c| c.as_str()), Some("tsfm"));
        assert!(e.get("ts").and_then(wire::Json::as_f64).is_some());
        assert!(e.get("dur").and_then(wire::Json::as_f64).is_some());
        names.insert(e.get("name").and_then(|n| n.as_str()).expect("name").to_string());
    }
    // The catalog open, snapshot build, and search paths all traced.
    for expected in ["catalog.open", "catalog.snapshot", "engine.search.join", "hnsw.search"] {
        assert!(names.contains(expected), "missing span {expected:?} in {names:?}");
    }
}
