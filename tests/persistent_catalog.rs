//! Acceptance tests for the persistent catalog (ISSUE 2): a catalog built
//! by ingesting CSVs, reopened cold, must return *identical* top-k
//! join/union/subset results to the in-memory pipeline over the same
//! tables; re-ingest must be incremental; and the real `tsfm` binary must
//! work end to end in a fresh process.

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use tabsketchfm::lake::{gen_join_search, JoinSearchConfig, World, WorldConfig};
use tabsketchfm::sketch::{SketchConfig, TableSketch};
use tabsketchfm::store::{Catalog, DiscoveryRequest, QueryEngine, QueryMode, TableRecord};
use tabsketchfm::table::csv;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_pcat_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a benchmark's tables as `<id>.csv` files; returns the directory.
fn write_lake_csvs(tag: &str) -> (PathBuf, Vec<String>) {
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(
        &world,
        &JoinSearchConfig {
            groups: 3,
            tables_per_group: 4,
            low_overlap_per_group: 1,
            distractors: 6,
            seed: 21,
        },
    );
    let dir = tmp_dir(tag);
    let mut ids = Vec::new();
    for t in &bench.tables {
        fs::write(dir.join(format!("{}.csv", t.id)), csv::table_to_csv(t)).unwrap();
        ids.push(t.id.clone());
    }
    (dir, ids)
}

/// The acceptance criterion: catalog results == in-memory pipeline results.
#[test]
fn reopened_catalog_matches_in_memory_pipeline() {
    let (csv_dir, ids) = write_lake_csvs("parity");
    let cat_dir = tmp_dir("parity_cat");

    // Ingest and drop — queries must not depend on the ingesting process.
    {
        let mut cat = Catalog::open(&cat_dir).unwrap();
        let report = cat.ingest_dir(&csv_dir).unwrap();
        assert_eq!(report.added, ids.len());
    }

    // In-memory pipeline: parse the same CSVs, sketch, build the engine.
    let cfg = SketchConfig::default();
    let records: Vec<TableRecord> = ids
        .iter()
        .map(|id| {
            let text = fs::read_to_string(csv_dir.join(format!("{id}.csv"))).unwrap();
            let table = csv::table_from_csv(id, id, &text);
            TableRecord::from_sketch(TableSketch::build(&table, &cfg), 0)
        })
        .collect();
    let in_memory = QueryEngine::build(&records, cfg.minhash_k, Default::default());

    // Reopened catalog: cold open, indexes rebuilt lazily at the first
    // searcher() snapshot.
    let mut cat = Catalog::open(&cat_dir).unwrap();
    assert_eq!(cat.len(), ids.len());
    let searcher = cat.searcher().unwrap();
    let k = 5;
    for id in ids.iter().take(8) {
        let text = fs::read_to_string(csv_dir.join(format!("{id}.csv"))).unwrap();
        let table = csv::table_from_csv(id, id, &text);
        let sketch = TableSketch::build(&table, &cfg);
        for mode in QueryMode::ALL {
            let req = DiscoveryRequest::builder(mode).k(k).build().unwrap();
            let fresh = in_memory.search(&sketch, &req).unwrap().hits;
            let persisted = searcher.search_table(&table, &req).unwrap().hits;
            assert_eq!(
                fresh, persisted,
                "{} results diverged for query {id}",
                mode.name()
            );
        }
    }

    // Second open hits the on-disk index cache and must still agree.
    cat.commit().unwrap();
    drop(cat);
    let mut cached = Catalog::open(&cat_dir).unwrap();
    assert!(cached.stats().index_cached, "first query persisted the index cache");
    let q_text = fs::read_to_string(csv_dir.join(format!("{}.csv", ids[0]))).unwrap();
    let q_table = csv::table_from_csv(&ids[0], &ids[0], &q_text);
    let q_sketch = TableSketch::build(&q_table, &cfg);
    let cached_searcher = cached.searcher().unwrap();
    for mode in QueryMode::ALL {
        let req = DiscoveryRequest::builder(mode).k(k).build().unwrap();
        assert_eq!(
            in_memory.search(&q_sketch, &req).unwrap().hits,
            cached_searcher.search_table(&q_table, &req).unwrap().hits,
            "cached-index results diverged"
        );
    }
}

/// Incremental ingest: unchanged directory → 0 sketches; one new CSV → 1.
#[test]
fn reingest_is_incremental() {
    let (csv_dir, ids) = write_lake_csvs("incr");
    let cat_dir = tmp_dir("incr_cat");

    let mut cat = Catalog::open(&cat_dir).unwrap();
    let r1 = cat.ingest_dir(&csv_dir).unwrap();
    assert_eq!(r1.added, ids.len());
    assert!(r1.failed.is_empty());

    let r2 = cat.ingest_dir(&csv_dir).unwrap();
    assert_eq!(r2.sketched(), 0, "unchanged directory must be a no-op: {r2:?}");
    assert_eq!(r2.unchanged, ids.len());

    fs::write(csv_dir.join("extra.csv"), "k,v\na,1\nb,2\n").unwrap();
    let r3 = cat.ingest_dir(&csv_dir).unwrap();
    assert_eq!(r3.sketched(), 1, "exactly the new CSV is sketched: {r3:?}");
    assert_eq!((r3.added, r3.unchanged), (1, ids.len()));
    assert_eq!(cat.len(), ids.len() + 1);
}

/// Drive the real binary: ingest + query + stats in fresh processes.
#[test]
fn tsfm_cli_end_to_end() {
    let (csv_dir, ids) = write_lake_csvs("cli");
    let cat_dir = tmp_dir("cli_cat");
    let bin = env!("CARGO_BIN_EXE_tsfm");

    // Give the subset workload a true row-subset of the query table.
    let base = fs::read_to_string(csv_dir.join(format!("{}.csv", ids[0]))).unwrap();
    let half: Vec<&str> = base.lines().take(1 + (base.lines().count() - 1) / 2).collect();
    fs::write(csv_dir.join("zz_rowsubset.csv"), half.join("\n") + "\n").unwrap();
    let n_tables = ids.len() + 1;

    let run = |args: &[&str]| {
        let out = Command::new(bin).args(args).output().expect("spawn tsfm");
        assert!(
            out.status.success(),
            "tsfm {args:?} failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let cat_s = cat_dir.to_str().unwrap();
    let csv_s = csv_dir.to_str().unwrap();
    let ingest1 = run(&["ingest", cat_s, csv_s]);
    assert!(ingest1.contains(&format!("{n_tables} added")), "{ingest1}");

    let ingest2 = run(&["ingest", cat_s, csv_s]);
    assert!(ingest2.contains("0 added"), "{ingest2}");
    assert!(ingest2.contains("(0 sketched)"), "re-ingest must be a no-op: {ingest2}");

    let query_csv = csv_dir.join(format!("{}.csv", ids[0]));
    for mode in ["join", "union", "subset"] {
        let out = run(&["query", cat_s, query_csv.to_str().unwrap(), "--mode", mode, "--k", "3"]);
        assert!(out.contains(&format!("mode={mode}")), "{out}");
        let hit_ids: Vec<&str> = out
            .lines()
            .skip(1) // header line names the query table itself
            .filter_map(|l| l.split_whitespace().nth(1))
            .collect();
        assert!(!hit_ids.is_empty(), "expected at least one ranked hit: {out}");
        assert!(!hit_ids.contains(&ids[0].as_str()), "query table excluded: {out}");
    }

    let stats = run(&["stats", cat_s]);
    assert!(stats.contains(&format!("tables        {n_tables}")), "{stats}");
    assert!(stats.contains("index cached  true"), "{stats}");

    // Usage errors exit non-zero.
    let out = Command::new(bin).arg("bogus").output().unwrap();
    assert!(!out.status.success());
}
