//! Integration tests for the search side: overlap indexes against lake
//! benchmarks, the Fig.-6 ranking on ground-truth-friendly inputs, and the
//! Eurostat invariance structure.

use tabsketchfm::lake::{
    gen_eurostat_subset, gen_join_search, JoinSearchConfig, World, WorldConfig,
    EUROSTAT_VARIANTS,
};
use tabsketchfm::search::{evaluate_search, JosieIndex, MinHashLsh};
use tabsketchfm::sketch::{content_snapshot, MinHasher};
use tabsketchfm::table::hash::hash_str;

#[test]
fn josie_join_search_meets_gold() {
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(
        &world,
        &JoinSearchConfig { groups: 4, tables_per_group: 6, low_overlap_per_group: 2, distractors: 10, seed: 3 },
    );
    let keys = bench.key_column.as_ref().unwrap();
    let mut index = JosieIndex::new();
    let mut owner = Vec::new();
    for (ti, t) in bench.tables.iter().enumerate() {
        for c in &t.columns {
            index.add(c.rendered_values().map(|v| hash_str(&v)));
            owner.push(ti);
        }
    }
    let k = 5;
    let retrieved: Vec<Vec<usize>> = bench
        .queries
        .iter()
        .map(|&q| {
            let hashes: Vec<u64> = bench.tables[q].columns[keys[q]]
                .rendered_values()
                .map(|v| hash_str(&v))
                .collect();
            let mut seen = std::collections::BTreeSet::new();
            let mut out = Vec::new();
            for (cid, _) in index.top_k_overlap(hashes, k * 4) {
                let t = owner[cid];
                if t != q && seen.insert(t) {
                    out.push(t);
                    if out.len() == k {
                        break;
                    }
                }
            }
            out
        })
        .collect();
    let s = evaluate_search(&retrieved, &bench.gold, k);
    assert!(
        s.mean_precision > 0.8,
        "exact overlap should dominate join search: {s:?}"
    );
}

#[test]
fn content_snapshot_lsh_finds_row_subsets() {
    let world = World::generate(WorldConfig::default());
    let bench = gen_eurostat_subset(&world, 6, 11);
    let mh = MinHasher::new(128, 0);
    let sigs: Vec<_> = bench.tables.iter().map(|t| content_snapshot(t, &mh, 10_000)).collect();
    // 64 bands × 2 rows: collision probability 1−(1−J²)⁶⁴ ≈ 98% even for
    // the 25%-row variant (J = 0.25); coarser bandings miss it.
    let mut lsh = MinHashLsh::new(64, 2);
    for s in &sigs {
        lsh.add(s.clone());
    }
    // Row-subset variants (col_frac == 1.0, no shuffles) must rank high.
    let row_subset_offsets: Vec<usize> = EUROSTAT_VARIANTS
        .iter()
        .enumerate()
        .filter(|(_, (rf, cf, sr, sc))| *cf == 1.0 && *rf < 1.0 && !sr && !sc)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(row_subset_offsets.len(), 3, "Fig-7 recipe has 3 row-only subsets");
    let mut found = 0usize;
    let mut total = 0usize;
    for &q in &bench.queries {
        let hits: std::collections::BTreeSet<usize> =
            lsh.search(&sigs[q], 12).into_iter().map(|(id, _)| id).collect();
        for &off in &row_subset_offsets {
            total += 1;
            if hits.contains(&(q + 1 + off)) {
                found += 1;
            }
        }
    }
    assert!(
        found * 10 >= total * 8,
        "row subsets share rows with the base table: {found}/{total}"
    );
}

#[test]
fn eurostat_shuffled_row_variant_has_identical_snapshot() {
    // §III-A: the content snapshot is a set of row strings, so the
    // row-shuffled variant is indistinguishable — §IV-C3's invariance.
    let world = World::generate(WorldConfig::default());
    let bench = gen_eurostat_subset(&world, 3, 17);
    let mh = MinHasher::new(64, 0);
    let row_shuffle_off = EUROSTAT_VARIANTS
        .iter()
        .position(|(_, _, sr, _)| *sr)
        .expect("row shuffle variant");
    for &q in &bench.queries {
        let base = content_snapshot(&bench.tables[q], &mh, 10_000);
        let shuffled = content_snapshot(&bench.tables[q + 1 + row_shuffle_off], &mh, 10_000);
        assert_eq!(base, shuffled);
    }
}

#[test]
fn weighted_f1_matches_manual_computation() {
    // Cross-check the Table II metric against a hand-computed case.
    let pred = vec![1, 1, 0, 0, 1];
    let gold = vec![1, 0, 0, 0, 1];
    // class 1: tp=2 fp=1 fn=0 → P=2/3 R=1 F1=0.8 support 2
    // class 0: tp=2 fp=0 fn=1 → P=1 R=2/3 F1=0.8 support 3
    let expect = (0.8 * 2.0 + 0.8 * 3.0) / 5.0;
    let got = tabsketchfm::search::weighted_f1(&pred, &gold);
    assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
}
