//! Hostile-client acceptance tests for the hardened serve frontend: a
//! real `tsfm serve` process must survive slowloris trickling, oversized
//! request lines, abrupt mid-exchange disconnects, and hundreds of
//! sequential connections — with thread and FD counts bounded by
//! `--max-conns`, typed error replies where a reply is possible, and the
//! `stats` verb accounting for everything afterwards.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tabsketchfm::store::{wire, Catalog};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_harden_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// An ingested catalog over the shared 3-table fixture lake.
fn fixture_catalog(tag: &str) -> PathBuf {
    let cat_dir = tmp_dir(tag);
    let mut cat = Catalog::open(&cat_dir).unwrap();
    cat.ingest_dir("tests/fixtures/lake").unwrap();
    assert_eq!(cat.len(), 3);
    cat_dir
}

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl ServerGuard {
    fn assert_alive(&mut self, context: &str) {
        assert!(
            self.0.try_wait().expect("try_wait").is_none(),
            "server process died: {context}"
        );
    }
}

/// Spawn `tsfm serve` with hardening flags tuned for fast tests; returns
/// the guard and the ephemeral address parsed from the banner.
fn spawn_hardened(cat_dir: &Path, extra: &[&str]) -> (ServerGuard, String) {
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let mut cmd = Command::new(bin);
    cmd.args(["serve", cat_dir.to_str().unwrap(), "--port", "0"]);
    cmd.args(extra);
    let mut child =
        cmd.stdout(Stdio::piped()).stderr(Stdio::null()).spawn().expect("spawn tsfm serve");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap()).read_line(&mut line).unwrap();
    assert!(line.contains("tsfm: serving"), "unexpected banner: {line:?}");
    let addr = line.rsplit(" on ").next().map(str::trim).unwrap_or_default().to_string();
    (ServerGuard(child), addr)
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(w: &mut TcpStream, r: &mut BufReader<TcpStream>, req: &str) -> wire::Json {
    writeln!(w, "{req}").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    wire::parse_json(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

/// `Threads:` from `/proc/<pid>/status` — the real count, panics included.
fn thread_count(pid: u32) -> usize {
    let status = fs::read_to_string(format!("/proc/{pid}/status")).expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

fn fd_count(pid: u32) -> usize {
    fs::read_dir(format!("/proc/{pid}/fd")).expect("proc fd").count()
}

#[test]
fn oversized_line_gets_typed_reply_then_close() {
    let cat_dir = fixture_catalog("oversize");
    let (mut guard, addr) = spawn_hardened(&cat_dir, &["--max-line-bytes", "4096"]);

    let (mut w, mut r) = connect(&addr);
    // 64 KiB with no newline: 16x over the cap.
    w.write_all(&vec![b'{'; 64 * 1024]).unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    let v = wire::parse_json(line.trim()).unwrap();
    assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("invalid_request"));
    assert_eq!(v.get("client").unwrap().as_bool(), Some(true));
    // The connection is closed afterwards — a mid-line client cannot be
    // resynchronized.
    let mut rest = String::new();
    r.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "expected close after overlong-line reply, got {rest:?}");

    // And the server is still fine for everyone else.
    let (mut w2, mut r2) = connect(&addr);
    let v = roundtrip(&mut w2, &mut r2, r#"{"mode":"join","k":2,"id":"cities"}"#);
    assert!(v.get("hits").is_some());
    guard.assert_alive("after oversized line");
}

#[test]
fn slowloris_is_cut_while_healthy_clients_are_served() {
    let cat_dir = fixture_catalog("loris");
    let (mut guard, addr) =
        spawn_hardened(&cat_dir, &["--read-timeout-ms", "500", "--idle-timeout-ms", "10000"]);

    let (mut w, _r) = connect(&addr);
    let t0 = Instant::now();
    // Trickle bytes with no newline; the absolute per-line deadline must
    // cut the connection even though bytes keep arriving.
    let mut cut = false;
    while t0.elapsed() < Duration::from_secs(8) {
        if w.write_all(b"x").and_then(|()| w.flush()).is_err() {
            cut = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(cut, "slowloris connection was never cut");
    assert!(t0.elapsed() >= Duration::from_millis(400), "cut too early: {:?}", t0.elapsed());

    // A healthy client connected during/after the attack is served.
    let (mut w2, mut r2) = connect(&addr);
    let v = roundtrip(&mut w2, &mut r2, r#"{"mode":"union","k":2,"id":"cities"}"#);
    assert!(v.get("hits").is_some());
    guard.assert_alive("after slowloris");
}

#[test]
fn abrupt_disconnects_never_kill_the_server() {
    let cat_dir = fixture_catalog("abrupt");
    let (mut guard, addr) = spawn_hardened(&cat_dir, &[]);

    for i in 0..20 {
        // Send a complete request and vanish without reading the reply.
        let (mut w, _r) = connect(&addr);
        writeln!(w, r#"{{"mode":"join","k":5,"id":"cities"}}"#).unwrap();
        w.flush().unwrap();
        drop(w);
        // Send a torn-off partial line and vanish.
        let (mut w, _r) = connect(&addr);
        w.write_all(b"{\"mode\":\"jo").unwrap();
        w.flush().unwrap();
        drop(w);
        if i % 5 == 0 {
            guard.assert_alive(&format!("after {} abrupt disconnects", 2 * (i + 1)));
        }
    }

    let (mut w, mut r) = connect(&addr);
    let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":2,"id":"cities"}"#);
    assert!(v.get("hits").is_some());
    guard.assert_alive("after abrupt-disconnect storm");
}

/// The headline bound: 600 sequential connections through a small pool,
/// threads and FDs stay capped, and the `stats` verb accounts for all of
/// it afterwards.
#[test]
fn six_hundred_connections_bounded_threads_and_fds() {
    let cat_dir = fixture_catalog("sixhundred");
    let (mut guard, addr) = spawn_hardened(&cat_dir, &["--max-conns", "8"]);
    let pid = guard.0.id();

    let mut peak_threads = 0usize;
    let mut peak_fds = 0usize;
    for i in 0..600 {
        let (mut w, mut r) = connect(&addr);
        let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":3,"id":"cities"}"#);
        assert!(v.get("hits").is_some(), "request {i} failed: {v:?}");
        if i % 37 == 0 {
            peak_threads = peak_threads.max(thread_count(pid));
            peak_fds = peak_fds.max(fd_count(pid));
        }
    }
    peak_threads = peak_threads.max(thread_count(pid));
    peak_fds = peak_fds.max(fd_count(pid));

    // Main + acceptor + reload watcher + ≤ 8 workers, with headroom for
    // runtime helpers: nowhere near the 600 a thread-per-connection
    // server would have spawned.
    assert!(peak_threads <= 16, "thread count unbounded: peak {peak_threads}");
    // stdio + listener + at most a few in-flight sockets.
    assert!(peak_fds <= 64, "fd count unbounded: peak {peak_fds}");

    let (mut w, mut r) = connect(&addr);
    let v = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    let stats = v.get("stats").expect("stats object");
    let accepted = stats
        .get("connections")
        .and_then(|c| c.get("accepted"))
        .and_then(wire::Json::as_f64)
        .unwrap();
    let ok = stats.get("requests").and_then(|q| q.get("ok")).and_then(wire::Json::as_f64).unwrap();
    assert!(accepted >= 601.0, "accepted {accepted}");
    assert!(ok >= 600.0, "ok {ok}");
    guard.assert_alive("after 600 connections");
}

#[test]
fn saturated_pool_sheds_with_unavailable_reply() {
    let cat_dir = fixture_catalog("shed");
    // One worker, pending queue of one (pending follows --max-conns).
    let (mut guard, addr) = spawn_hardened(&cat_dir, &["--max-conns", "1"]);

    // Occupy the only worker with a proven-live connection.
    let (mut w1, mut r1) = connect(&addr);
    let v = roundtrip(&mut w1, &mut r1, r#"{"mode":"join","k":2,"id":"cities"}"#);
    assert!(v.get("hits").is_some());

    // Fill the pending queue.
    let (_w2, _r2) = connect(&addr);
    std::thread::sleep(Duration::from_millis(300));

    // The next connection must be refused with a parseable line, fast.
    let (_w3, mut r3) = connect(&addr);
    let mut line = String::new();
    r3.read_line(&mut line).unwrap();
    let v = wire::parse_json(line.trim()).unwrap_or_else(|e| panic!("{line:?}: {e}"));
    assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("unavailable"));
    assert_eq!(v.get("client").unwrap().as_bool(), Some(false));

    // The served connection never noticed.
    let v = roundtrip(&mut w1, &mut r1, r#"{"op":"stats"}"#);
    assert!(v.get("stats").unwrap().get("connections").unwrap().get("shed").unwrap().as_f64()
        >= Some(1.0));
    guard.assert_alive("after shedding");
}

#[test]
fn manifest_watcher_hot_swaps_new_tables() {
    let cat_dir = fixture_catalog("reload");
    let (mut guard, addr) = spawn_hardened(&cat_dir, &["--reload-ms", "150"]);

    let (mut w, mut r) = connect(&addr);
    let v = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    assert_eq!(v.get("stats").unwrap().get("tables").unwrap().as_f64(), Some(3.0));

    // Another process ingests a fourth table into the same catalog.
    let extra_dir = tmp_dir("reload_extra");
    fs::write(
        extra_dir.join("harbors.csv"),
        "harbor,depth_m\nTrieste,18\nRotterdam,24\nSingapore,20\n",
    )
    .unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_tsfm"))
        .args(["ingest", cat_dir.to_str().unwrap(), extra_dir.to_str().unwrap()])
        .status()
        .expect("run tsfm ingest");
    assert!(status.success());

    // The watcher must swap the bigger snapshot in without this
    // connection ever reconnecting.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let v = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
        let stats = v.get("stats").unwrap();
        if stats.get("tables").unwrap().as_f64() == Some(4.0) {
            assert!(stats.get("reloads").unwrap().as_f64() >= Some(1.0));
            break;
        }
        assert!(Instant::now() < deadline, "hot reload never happened: {v:?}");
        std::thread::sleep(Duration::from_millis(150));
    }

    // And the new table is queryable.
    let v = roundtrip(&mut w, &mut r, r#"{"mode":"join","k":4,"id":"harbors"}"#);
    assert!(v.get("hits").is_some(), "{v:?}");
    guard.assert_alive("after hot reload");
}
