//! Acceptance tests for the sharded catalog (ISSUE 10): compaction folds
//! loose segments into `TSFMSHD1` shard manifests + `TSFMARN1` sketch
//! arenas, opens stay O(shards), lazy snapshots answer bit-identically to
//! eager ones, live snapshots survive a compaction underneath them, and
//! `tsfm fsck --repair` quarantines a bad shard as a unit while loose
//! tables keep serving.
//!
//! `tests/fixtures/v2_store/` is a *monolithic* v2 catalog (loose
//! segments only, no `shards/`) committed by the pre-shard code path —
//! the migration fixture. Like `v1_store`, it is immutable bytes: every
//! test copies it to a temp dir first.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tabsketchfm::lake::{gen_pretrain_corpus, World, WorldConfig};
use tabsketchfm::store::fsck::{fsck, IndexCacheState};
use tabsketchfm::store::{
    Catalog, DiscoveryRequest, DiscoveryResponse, QueryMode, SnapshotMode,
};
use tabsketchfm::table::{csv, Table};

const V2_FIXTURE: &str = "tests/fixtures/v2_store";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_sharded_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic generated corpus (the paper's CKAN/Socrata stand-in).
fn corpus(n: usize) -> Vec<Table> {
    let world = World::generate(WorldConfig::default());
    gen_pretrain_corpus(&world, n, 17)
}

/// Ingest `tables` and compact them into the shard tier.
fn sharded_catalog(dir: &Path, tables: &[Table]) -> Catalog {
    let mut cat = Catalog::open(dir).unwrap();
    for (i, t) in tables.iter().enumerate() {
        cat.add_table(t, i as u64 + 1).unwrap();
    }
    cat.compact().unwrap();
    cat
}

/// Two responses must agree bit for bit: same ids in the same order with
/// the exact same score words (not merely approximately equal).
fn assert_same_hits(a: &DiscoveryResponse, b: &DiscoveryResponse, ctx: &str) {
    assert_eq!(a.hits.len(), b.hits.len(), "{ctx}: hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.table_id, y.table_id, "{ctx}: ranking diverged");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: score for {} not bit-identical ({} vs {})",
            x.table_id,
            x.score,
            y.score
        );
        assert_eq!(x.matching_columns, y.matching_columns, "{ctx}: columns for {}", x.table_id);
    }
}

#[test]
fn compaction_folds_loose_tier_into_shards_and_preserves_answers() {
    let dir = tmp_dir("roundtrip");
    let tables = corpus(60);
    let query = tables[7].clone();
    let req = DiscoveryRequest::builder(QueryMode::Join).k(10).build().unwrap();

    // Eager, loose-only baseline ranking before any shard exists.
    let mut cat = Catalog::open(&dir).unwrap();
    for (i, t) in tables.iter().enumerate() {
        cat.add_table(t, i as u64 + 1).unwrap();
    }
    cat.commit().unwrap();
    let before = cat.searcher().unwrap().search_table(&query, &req).unwrap();

    // Compaction moves every table into exactly one shard generation and
    // empties the loose tier.
    cat.compact().unwrap();
    assert_eq!(cat.shard_count(), 1, "60 tables fit one 4096-wide shard");
    assert_eq!(cat.len(), tables.len());
    let loose: Vec<_> = fs::read_dir(dir.join("segments")).unwrap().collect();
    assert!(loose.is_empty(), "compaction must absorb every loose segment");
    assert!(dir.join("shards").is_dir());

    // Same process, post-compaction: identical ranking.
    let after = cat.searcher().unwrap().search_table(&query, &req).unwrap();
    assert_same_hits(&before, &after, "pre vs post compaction");
    drop(cat);

    // Cold reopen reads only the root manifest; every record is still
    // reachable through the arena and the ranking is unchanged.
    let mut cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.len(), tables.len());
    for t in &tables {
        assert_eq!(cat.record(&t.id).unwrap().sketch.table_id, t.id);
    }
    // Auto stays eager at this size — 60 tables are cheap to hold — so
    // the lazy path is requested explicitly.
    assert!(!cat.searcher().unwrap().is_lazy(), "Auto holds a small corpus eagerly");
    cat.set_snapshot_mode(SnapshotMode::Lazy);
    let snap = cat.searcher().unwrap();
    assert!(snap.is_lazy());
    let reopened = snap.search_table(&query, &req).unwrap();
    assert_same_hits(&before, &reopened, "cold lazy reopen");

    // The two-tier mutation path: update one shard-resident table
    // (shadow), remove another (tombstone), add a fresh one (loose).
    let mut updated = tables[3].clone();
    updated.columns.pop();
    cat.add_table(&updated, 999_001).unwrap();
    assert!(cat.remove(&tables[5].id).unwrap());
    let extra = csv::table_from_csv("zz_extra", "zz_extra", "a,b\n1,2\n3,4\n");
    cat.add_table(&extra, 999_002).unwrap();
    cat.commit().unwrap();
    assert_eq!(cat.len(), tables.len(), "-1 removed, +1 added");
    assert!(cat.record(&tables[5].id).is_err(), "tombstone must shadow the shard copy");
    assert_eq!(cat.record(&tables[3].id).unwrap().content_hash, 999_001);
    drop(cat);

    // ... and all of it survives a reopen + full fsck.
    let mut cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.len(), tables.len());
    assert!(cat.record(&tables[5].id).is_err());
    assert_eq!(cat.record(&tables[3].id).unwrap().content_hash, 999_001);
    cat.searcher().unwrap();
    cat.commit().unwrap();
    drop(cat);
    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{}", report.to_json());
    assert_eq!(report.tables, tables.len());
    assert_eq!(report.index_cache, IndexCacheState::Valid);
}

#[test]
fn lazy_and_eager_snapshots_answer_bit_identically() {
    let dir = tmp_dir("lazy_eq_eager");
    let tables = corpus(80);
    let mut cat = sharded_catalog(&dir, &tables);
    // Leave churn in both tiers so the comparison crosses loose + shard.
    let mut updated = tables[11].clone();
    let keep = updated.columns.len().div_ceil(2);
    updated.columns.truncate(keep);
    cat.add_table(&updated, 777).unwrap();
    assert!(cat.remove(&tables[12].id).unwrap());
    cat.commit().unwrap();

    let fresh = csv::table_from_csv("probe", "probe", "city,pop\nWien,1900\nGraz,290\n");
    let reqs: Vec<DiscoveryRequest> = [QueryMode::Join, QueryMode::Union, QueryMode::Subset]
        .into_iter()
        .map(|m| DiscoveryRequest::builder(m).k(15).build().unwrap())
        .collect();

    cat.set_snapshot_mode(SnapshotMode::Eager);
    let eager = cat.searcher().unwrap();
    assert!(!eager.is_lazy());
    cat.set_snapshot_mode(SnapshotMode::Lazy);
    let lazy = cat.searcher().unwrap();
    assert!(lazy.is_lazy());
    assert_eq!(eager.len(), lazy.len());

    for req in &reqs {
        // A query table that is not in the corpus...
        assert_same_hits(
            &eager.search_table(&fresh, req).unwrap(),
            &lazy.search_table(&fresh, req).unwrap(),
            "fresh query",
        );
        // ... and every corpus table by id, which on the lazy side pulls
        // the sketch through a positioned arena read.
        for t in &tables {
            if t.id == tables[12].id {
                continue; // removed above
            }
            assert_same_hits(
                &eager.search_id(&t.id, req).unwrap(),
                &lazy.search_id(&t.id, req).unwrap(),
                &format!("by-id query {}", t.id),
            );
        }
    }
}

#[test]
fn live_lazy_snapshot_survives_compaction_underneath() {
    let dir = tmp_dir("concurrent");
    let tables = corpus(40);
    let mut cat = sharded_catalog(&dir, &tables);
    cat.set_snapshot_mode(SnapshotMode::Lazy);
    let snap = cat.searcher().unwrap();
    assert!(snap.is_lazy());
    let req = DiscoveryRequest::builder(QueryMode::Join).k(8).build().unwrap();
    let baseline: Vec<DiscoveryResponse> =
        tables.iter().map(|t| snap.search_id(&t.id, &req).unwrap()).collect();

    // A reader thread hammers the captured snapshot while the writer
    // below rewrites the shard generation (and unlinks the arena the
    // snapshot is reading) several times.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let (snap, req, tables, stop) = (snap.clone(), req.clone(), tables.clone(), stop.clone());
        std::thread::spawn(move || -> Result<u64, String> {
            let mut queries = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for t in &tables {
                    snap.search_id(&t.id, &req).map_err(|e| format!("{}: {e}", t.id))?;
                    queries += 1;
                }
            }
            Ok(queries)
        })
    };

    for round in 0u64..4 {
        let mut churn = tables[round as usize].clone();
        let extra = churn.columns[0].clone();
        churn.columns.push(extra);
        cat.add_table(&churn, 10_000 + round).unwrap();
        cat.compact().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let queries = reader.join().unwrap().expect("reader thread must never see an error");
    assert!(queries >= tables.len() as u64, "reader made progress");

    // The captured generation still answers exactly as it did before any
    // compaction, arena unlinks and all.
    for (t, before) in tables.iter().zip(&baseline) {
        let now = snap.search_id(&t.id, &req).unwrap();
        assert_same_hits(before, &now, "snapshot stability");
    }

    // A fresh snapshot sees the post-churn contents and fsck is green.
    drop(snap);
    assert_eq!(cat.searcher().unwrap().len(), tables.len());
    drop(cat);
    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{}", report.to_json());
}

#[test]
fn fsck_quarantines_a_bad_shard_and_loose_tables_survive() {
    let dir = tmp_dir("quarantine");
    let tables = corpus(30);
    let mut cat = sharded_catalog(&dir, &tables);
    // Three loose tables on top of the shard tier — churn small enough
    // that commit() does not auto-compact them in.
    let mut loose_ids = Vec::new();
    for i in 0..3 {
        let t = csv::table_from_csv(
            &format!("loose{i}"),
            &format!("loose{i}"),
            &format!("k,v\nx{i},{i}\ny{i},{}\n", i * 7),
        );
        loose_ids.push(t.id.clone());
        cat.add_table(&t, 500 + i as u64).unwrap();
    }
    cat.commit().unwrap();
    assert_eq!(cat.shard_count(), 1);
    drop(cat);

    // Flip one payload byte deep inside the arena.
    let arena = fs::read_dir(dir.join("shards"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "arena"))
        .expect("compacted store has an arena");
    let mut bytes = fs::read(&arena).unwrap();
    let at = bytes.len() - 9;
    bytes[at] ^= 0x40;
    fs::write(&arena, &bytes).unwrap();

    // Detection names the shard; repair quarantines BOTH shard files as a
    // unit and drops exactly the shard-resident tables.
    let report = fsck(&dir, false).unwrap();
    assert!(!report.healthy(), "{}", report.to_json());
    assert!(
        report.problems.iter().any(|p| p.kind.as_str() == "corrupt_shard"),
        "{}",
        report.to_json()
    );
    let report = fsck(&dir, true).unwrap();
    assert!(report.consistent_after(), "{}", report.to_json());
    let repair = report.repair.expect("repair must act");
    assert_eq!(repair.quarantined.len(), 2, "shard manifest + arena: {repair:?}");
    assert_eq!(repair.dropped_tables.len(), tables.len(), "every shard resident dropped");
    assert!(dir.join("quarantine").is_dir());

    // The degraded store verifies green and still serves the loose tier.
    let clean = fsck(&dir, false).unwrap();
    assert!(clean.healthy(), "{}", clean.to_json());
    assert_eq!(clean.tables, loose_ids.len());
    let mut cat = Catalog::open(&dir).unwrap();
    assert_eq!(cat.len(), loose_ids.len());
    let snap = cat.searcher().unwrap();
    let req = DiscoveryRequest::builder(QueryMode::Join).k(3).build().unwrap();
    for id in &loose_ids {
        snap.search_id(id, &req).unwrap();
    }
}

/// Recursive copy of the committed monolithic fixture into a scratch dir.
fn copy_v2_fixture(tag: &str) -> PathBuf {
    let dst = tmp_dir(tag);
    fs::copy(Path::new(V2_FIXTURE).join("catalog.manifest"), dst.join("catalog.manifest"))
        .unwrap();
    fs::copy(Path::new(V2_FIXTURE).join("index.cache"), dst.join("index.cache")).unwrap();
    let seg_dst = dst.join("segments");
    fs::create_dir_all(&seg_dst).unwrap();
    for e in fs::read_dir(Path::new(V2_FIXTURE).join("segments")).unwrap() {
        let e = e.unwrap();
        fs::copy(e.path(), seg_dst.join(e.file_name())).unwrap();
    }
    dst
}

#[test]
fn monolithic_v2_store_migrates_to_shards_via_tsfm_compact() {
    let bin = env!("CARGO_BIN_EXE_tsfm");
    let dir = copy_v2_fixture("migrate");
    let dir_s = dir.to_str().unwrap();
    assert!(!dir.join("shards").exists(), "fixture must be pre-shard monolithic");

    // Recorded ranking over the monolithic bytes.
    let text = fs::read_to_string("tests/fixtures/lake/cities.csv").unwrap();
    let query = csv::table_from_csv("cities", "cities", &text);
    let req = DiscoveryRequest::builder(QueryMode::Join).k(3).build().unwrap();
    let before = Catalog::open(&dir).unwrap().searcher().unwrap().search_table(&query, &req).unwrap();
    assert!(!before.hits.is_empty());

    // One CLI invocation migrates in place.
    let out = Command::new(bin).args(["compact", dir_s]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("1 shard"), "{stdout}");
    assert!(dir.join("shards").is_dir());
    let loose: Vec<_> = fs::read_dir(dir.join("segments")).unwrap().collect();
    assert!(loose.is_empty(), "migration absorbs every loose segment");

    // Compaction is content-preserving: identical ranking AND the
    // fixture's committed index cache is still valid (same fingerprint).
    let mut cat = Catalog::open(&dir).unwrap();
    cat.set_snapshot_mode(SnapshotMode::Lazy);
    let snap = cat.searcher().unwrap();
    assert!(snap.is_lazy());
    assert_same_hits(&before, &snap.search_table(&query, &req).unwrap(), "post-migration");
    drop(cat);
    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{}", report.to_json());
    assert_eq!(report.index_cache, IndexCacheState::Valid, "{}", report.to_json());

    // `tsfm compact` again is a no-op that stays green.
    let out = Command::new(bin).args(["compact", dir_s]).output().unwrap();
    assert!(out.status.success());
    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{}", report.to_json());
}
