//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides the subset of the criterion 0.5 API this workspace's benches
//! use, with a small calibrated measurement loop instead of criterion's
//! statistical machinery. Prints `name ... median ns/iter` lines.
//!
//! Honours two environment variables:
//! * `TSFM_BENCH_FAST=1` — single quick sample per bench (used to smoke-run
//!   benches in CI without waiting for calibration).
//! * `TSFM_BENCH_FILTER=substr` — run only benches whose id contains the
//!   substring (mirrors `cargo bench -- substr`, which is also supported).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fast_mode() -> bool {
    std::env::var("TSFM_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn filter() -> Option<String> {
    if let Ok(f) = std::env::var("TSFM_BENCH_FILTER") {
        return Some(f);
    }
    // `cargo bench -- substr` passes the substring as a CLI argument.
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(pat) = filter() {
        if !id.contains(&pat) {
            return;
        }
    }
    // Calibrate: grow the iteration count until one sample takes ≥ ~5 ms
    // (one iteration in fast mode), then take several samples.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let (samples, target) = if fast_mode() {
        (1usize, Duration::ZERO)
    } else {
        (7usize, Duration::from_millis(5))
    };
    loop {
        f(&mut b);
        if b.elapsed >= target || b.iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            100
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
        };
        b.iters = (b.iters * grow.clamp(2, 100)).min(1 << 30);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!("bench: {id:<50} {median:>14.1} ns/iter ({} iters/sample)", b.iters);
}

/// Entry point type; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    // By-value `id` mirrors upstream criterion's signature; the shim must
    // stay call-compatible so benches build against either.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Groups bench functions under one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
