//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, the `prop_assert!` family, and
//! strategies for numeric ranges, regex-lite string patterns, and
//! [`collection::vec`]. Failing cases are greedily shrunk before reporting.
//!
//! Each property runs `config.cases` random cases from a deterministic seed
//! derived from the property's name, so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `proptest::collection::vec(element, size_range)`: vectors whose length
    /// is drawn from `sizes` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }
}

pub mod test_runner {
    pub use crate::strategy::TestRng;

    /// Runtime knobs for a `proptest!` block. Only `cases` and
    /// `max_shrink_iters` are honoured by the shim; the rest exist for
    /// source compatibility with upstream proptest.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65536 }
        }
    }

    /// Deterministic per-property RNG: every run of the same property sees
    /// the same case sequence.
    pub fn rng_for(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed(h ^ (((case as u64) << 32) | 0x9e37_79b9))
    }

    /// A failed property case, carrying the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::proptest;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
}

/// Like `assert!` but reports through the proptest runner (so the failing
/// case is shrunk and its inputs printed before the panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "{:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "{:?} != {:?}: {}", __l, __r, format!($($fmt)*));
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "{:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "{:?} == {:?}: {}", __l, __r, format!($($fmt)*));
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` random cases; a failing case
/// is greedily shrunk and reported with its inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case_idx in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name), __case_idx);
                // Values live in RefCells so the runner closure can read the
                // *current* values (also during shrinking) without taking
                // parameters, whose types a closure cannot infer.
                $(let $arg = ::std::cell::RefCell::new(
                    $crate::strategy::Strategy::generate(&$strat, &mut __rng),
                );)+
                let __run = || -> $crate::test_runner::TestCaseResult {
                    $(let $arg = ::std::clone::Clone::clone(&*$arg.borrow());)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                let __first_err = match __run() {
                    ::std::result::Result::Ok(()) => continue,
                    ::std::result::Result::Err(e) => e,
                };
                // Greedy shrink: repeatedly try simpler values slot by slot,
                // keeping any candidate that still fails.
                let mut __budget = __config.max_shrink_iters;
                let mut __made_progress = true;
                while __made_progress && __budget > 0 {
                    __made_progress = false;
                    $crate::__shrink_each! {
                        __run, __budget, __made_progress, ($($strat => $arg),+)
                    }
                }
                let __msg = __run().err().unwrap_or(__first_err).0;
                panic!(
                    "proptest property {} failed (case {} of {}): {}\n  minimal failing input: {:#?}",
                    stringify!($name), __case_idx + 1, __config.cases, __msg,
                    ($(&*$arg.borrow(),)+)
                );
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Shrinks one slot at a time while re-running the full case (the runner
/// closure reads the RefCell-held current values).
#[doc(hidden)]
#[macro_export]
macro_rules! __shrink_each {
    ($run:ident, $budget:ident, $progress:ident, ()) => {};
    ($run:ident, $budget:ident, $progress:ident,
     ($strat:expr => $cur:ident $(, $rstrat:expr => $rcur:ident)* $(,)?)) => {
        {
            let __cands = $crate::strategy::Strategy::shrink(&$strat, &*$cur.borrow());
            for __cand in __cands {
                if $budget == 0 { break; }
                $budget -= 1;
                let __saved = $cur.replace(__cand);
                if $run().is_err() {
                    $progress = true;
                    break;
                }
                $cur.replace(__saved);
            }
        }
        $crate::__shrink_each! { $run, $budget, $progress, ($($rstrat => $rcur),*) }
    };
}
