//! Value-generation strategies for the proptest shim.
//!
//! A [`Strategy`] produces random values and can propose *shrink
//! candidates*: simpler variants of a failing value that the runner tries in
//! order to minimise counterexamples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// The RNG handed to strategies. Wraps the (shimmed) `StdRng`.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn seed(s: u64) -> Self {
        TestRng(StdRng::seed_from_u64(s))
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }
}

/// A generator of random test inputs plus a shrinking rule.
pub trait Strategy {
    type Value: Clone + Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler variants of `value` to try when a case fails, most aggressive
    /// first. Returning an empty vec disables shrinking for this strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.0.gen_range(0u64..span as u64)) as i128;
                (self.start as i128 + off) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != self.start {
                    out.push(self.start);
                    let mid = (self.start as i128 + (*value as i128 - self.start as i128) / 2) as $t;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    let pred = (*value as i128 - 1) as $t;
                    if pred != self.start {
                        out.push(pred);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                // Prefer zero when the range allows it, else the range start.
                let anchor: $t = if self.start <= 0.0 && 0.0 < self.end { 0.0 } else { self.start };
                if *value != anchor {
                    out.push(anchor);
                    let mid = anchor + (*value - anchor) / 2.0;
                    if mid != anchor && mid != *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Regex-lite string strategy: `&str` patterns like `".{0,20}"` or
/// `"[a-z0-9]{1,12}"` act as generators for matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.class.pick(rng));
            }
        }
        out
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let atoms = parse_pattern(self);
        // Only single-atom patterns (all that this workspace uses) shrink by
        // dropping characters; multi-atom patterns would need match tracking.
        if atoms.len() != 1 || value.chars().count() <= atoms[0].min {
            return Vec::new();
        }
        let min = atoms[0].min;
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        if min == 0 && !value.is_empty() {
            out.push(String::new());
        }
        let half: String = chars[..(chars.len() / 2).max(min)].iter().collect();
        if half.len() < value.len() {
            out.push(half);
        }
        let butlast: String = chars[..chars.len() - 1].iter().collect();
        out.push(butlast);
        out.dedup();
        out
    }
}

/// Strategy for `proptest::collection::vec(element, sizes)`.
pub struct VecStrategy<S: Strategy> {
    pub element: S,
    pub sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.sizes.start < self.sizes.end, "empty vec size range");
        let n = self.sizes.start + rng.below(self.sizes.end - self.sizes.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.sizes.start;
        let mut out = Vec::new();
        // Structural shrinks: shorter vectors first.
        if value.len() > min {
            out.push(value[..min].to_vec());
            let half = (value.len() / 2).max(min);
            if half < value.len() && half > min {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        // Element-wise shrinks: simplify one position at a time. All of an
        // element's candidates are offered — the greedy runner needs the
        // later (less aggressive) ones when the aggressive ones pass.
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// One `<class><repetition>` unit of a regex-lite pattern.
struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

enum CharClass {
    /// `.` — any char drawn from a pool that includes CSV-hostile content
    /// (commas, quotes, newlines, unicode) to exercise edge cases.
    Any,
    /// `[...]` — an explicit set, e.g. `[a-z0-9]`.
    Set(Vec<char>),
    /// A literal character.
    Lit(char),
}

impl CharClass {
    fn pick(&self, rng: &mut TestRng) -> char {
        const ANY_POOL: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', ',', '"', '\'', '\n',
            '\r', '\t', ';', ':', '.', '-', '_', '/', '\\', '(', ')', '{', '}', '|', '#', '%',
            'é', 'ß', '日', '本', '語', '→', '🦀', '½', 'Ω', '\u{200b}',
        ];
        match self {
            CharClass::Any => ANY_POOL[rng.below(ANY_POOL.len())],
            CharClass::Set(chars) => chars[rng.below(chars.len())],
            CharClass::Lit(c) => *c,
        }
    }
}

/// Parse the regex subset used as string strategies: literals, `.`,
/// `[sets]` (with `a-z` ranges), and `{m}`/`{m,n}`/`*`/`+`/`?` repetition.
fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let class = match chars[i] {
            '.' => {
                i += 1;
                CharClass::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']').map_or_else(|| panic!("unclosed [ in pattern {pat:?}"), |p| i + p);
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pat:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty [] in pattern {pat:?}");
                i = close + 1;
                CharClass::Set(set)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling \\ in pattern {pat:?}");
                i += 2;
                CharClass::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                CharClass::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}').map_or_else(|| panic!("unclosed {{ in pattern {pat:?}"), |p| i + p);
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n}"),
                            n.trim().parse().expect("bad {m,n}"),
                        ),
                        None => {
                            let m: usize = body.trim().parse().expect("bad {m}");
                            (m, m)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in pattern {pat:?}");
        atoms.push(Atom { class, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed(1)
    }

    #[test]
    fn int_range_in_bounds() {
        let s = 3i64..17;
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn int_shrink_moves_toward_start() {
        let s = 0usize..100;
        for cand in s.shrink(&40) {
            assert!(cand < 40);
        }
        assert!(s.shrink(&0).is_empty());
    }

    #[test]
    fn string_pattern_lengths_and_alphabet() {
        let mut r = rng();
        for _ in 0..100 {
            let v = "[a-z0-9]{1,12}".generate(&mut r);
            let n = v.chars().count();
            assert!((1..=12).contains(&n), "bad len {n}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        for _ in 0..100 {
            let v = ".{0,20}".generate(&mut r);
            assert!(v.chars().count() <= 20);
        }
    }

    #[test]
    fn string_shrink_respects_min_len() {
        let s = "[a-z]{2,5}";
        let v = "abcde".to_string();
        for cand in s.shrink(&v) {
            assert!(cand.chars().count() >= 2, "shrunk below min: {cand:?}");
            assert!(cand.len() < v.len());
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = crate::collection::vec(0u8..5, 2..6);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        for cand in s.shrink(&vec![4, 4, 4, 4, 4]) {
            assert!(cand.len() >= 2);
        }
    }

    #[test]
    fn literal_and_escape_atoms() {
        let mut r = rng();
        assert_eq!("abc".generate(&mut r), "abc");
        assert_eq!("a\\.b".generate(&mut r), "a.b");
        let v = "x+".generate(&mut r);
        assert!(!v.is_empty() && v.chars().all(|c| c == 'x'));
    }
}
