//! Self-tests for the proptest shim's runner: failing properties must
//! actually fail (no vacuous green), inputs must shrink, and passing
//! properties must see the whole configured case count.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_SEEN: AtomicU32 = AtomicU32::new(0);

#[test]
fn runner_executes_configured_case_count() {
    // Declared here (not registered with the harness) so no parallel
    // harness thread races on CASES_SEEN.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[allow(dead_code)]
        fn counts_every_case(_x in 0u32..1000) {
            CASES_SEEN.fetch_add(1, Ordering::SeqCst);
        }
    }
    CASES_SEEN.store(0, Ordering::SeqCst);
    counts_every_case();
    assert_eq!(CASES_SEEN.load(Ordering::SeqCst), 40);
}

#[test]
fn failing_property_panics_with_shrunk_input() {
    // Declared inside a passing #[test] so the failing property is invoked
    // under catch_unwind rather than registered with the harness.
    proptest! {
        #[allow(dead_code)]
        fn must_fail(v in proptest::collection::vec(0u32..1000, 1..30)) {
            prop_assert!(v.iter().sum::<u32>() < 50, "sum too large");
        }
    }
    let err = catch_unwind(AssertUnwindSafe(must_fail)).expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("panic carries a String");
    assert!(msg.contains("sum too large"), "assertion message surfaced: {msg}");
    // Greedy shrinking drives the counterexample to a single element just
    // over the threshold — well below a random 30-element vector.
    let digits: String =
        msg.chars().skip_while(|c| *c != '[').take_while(|c| *c != ']').collect();
    let total: u32 = digits
        .trim_start_matches('[')
        .split(',')
        .filter_map(|t| t.trim().parse::<u32>().ok())
        .sum();
    assert!(total < 200, "shrunk sum should approach the 50 threshold, got {total} ({msg})");
}

#[test]
fn prop_assert_eq_reports_both_sides() {
    proptest! {
        #[allow(dead_code)]
        fn eq_fails(x in 5u8..6) {
            prop_assert_eq!(x, 7u8);
        }
    }
    let err = catch_unwind(AssertUnwindSafe(eq_fails)).expect_err("must fail");
    let msg = err.downcast_ref::<String>().expect("panic carries a String");
    assert!(msg.contains('5') && msg.contains('7'), "{msg}");
}

proptest! {
    /// Multi-argument properties see independently drawn values.
    #[test]
    fn multi_arg_independence(a in 0u64..1000, b in 0u64..1000, s in "[a-z]{1,8}") {
        prop_assert!(a < 1000 && b < 1000);
        prop_assert!((1..=8).contains(&s.len()));
    }
}
