//! Offline shim for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API used by this workspace:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`], and [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic for a
//! fixed seed, but its stream differs from upstream rand's ChaCha12-based
//! `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

/// Uniform in [0, 1) with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in [0, 1) with 24 random mantissa bits.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform u64 in [0, span) via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let reject_below = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= reject_below {
            return (m >> 64) as u64;
        }
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`. The single
/// blanket [`SampleRange`] impl below routes both range kinds through this,
/// which (as in upstream rand) lets the range's element type drive inference
/// of `gen_range`'s return type.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // whole 64-bit domain
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, inclusive: bool, rng: &mut R) -> f64 {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(lo: f32, hi: f32, inclusive: bool, rng: &mut R) -> f32 {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
        lo + (hi - lo) * unit_f32(rng)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing RNG trait; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64. Deterministic per seed; the
    /// stream differs from upstream rand's ChaCha12 `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extensions: Fisher-Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let draws_a: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let draws_c: Vec<u64> = (0..10).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..=4);
            assert!(u == 3 || u == 4);
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should occur: {seen:?}");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not stay in order");
    }
}
